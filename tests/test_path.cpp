#include "sssp/path.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_util.hpp"

namespace peek::sssp {
namespace {

TEST(Path, FromParents) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}});
  auto r = dijkstra(GraphView(g), 0);
  Path p = path_from_parents(r, 0, 3);
  EXPECT_EQ(p.verts, (std::vector<vid_t>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(p.dist, 6.0);
}

TEST(Path, FromParentsUnreachable) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}});
  auto r = dijkstra(GraphView(g), 0);
  EXPECT_TRUE(path_from_parents(r, 0, 2).empty());
}

TEST(Path, FromParentsSourceIsTarget) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  auto r = dijkstra(GraphView(g), 0);
  Path p = path_from_parents(r, 0, 0);
  EXPECT_EQ(p.verts, (std::vector<vid_t>{0}));
  EXPECT_DOUBLE_EQ(p.dist, 0.0);
}

TEST(Path, FromReverseParents) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  auto r = reverse_dijkstra(g, 2);
  Path p = path_from_reverse_parents(r, 0, 2);
  EXPECT_EQ(p.verts, (std::vector<vid_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(p.dist, 3.0);
}

TEST(Path, Concat) {
  Path a{{0, 1, 2}, 3.0};
  Path b{{2, 5}, 1.5};
  Path c = concat(a, b);
  EXPECT_EQ(c.verts, (std::vector<vid_t>{0, 1, 2, 5}));
  EXPECT_DOUBLE_EQ(c.dist, 4.5);
}

TEST(Path, ConcatMismatchIsEmpty) {
  EXPECT_TRUE(concat({{0, 1}, 1.0}, {{2, 3}, 1.0}).empty());
  EXPECT_TRUE(concat({}, {{0, 1}, 1.0}).empty());
}

TEST(Path, IsSimple) {
  EXPECT_TRUE(is_simple({{0, 1, 2}, 0}));
  EXPECT_FALSE(is_simple({{0, 1, 0}, 0}));
  EXPECT_TRUE(is_simple({{}, 0}));
}

TEST(Path, Distance) {
  auto g = graph::from_edges(3, {{0, 1, 1.5}, {1, 2, 2.5}});
  EXPECT_DOUBLE_EQ(path_distance(g, {0, 1, 2}), 4.0);
  EXPECT_EQ(path_distance(g, {0, 2}), kInfDist);  // missing edge
  EXPECT_EQ(path_distance(g, {}), kInfDist);
}

TEST(Path, HashDistinguishes) {
  PathHash h;
  EXPECT_NE(h({{0, 1, 2}, 0}), h({{0, 2, 1}, 0}));
  EXPECT_EQ(h({{0, 1, 2}, 0}), h({{0, 1, 2}, 99.0}));  // dist not hashed
}

TEST(Path, ToString) {
  EXPECT_EQ(to_string({{0, 3, 7}, 2.5}), "0 -> 3 -> 7 (2.5)");
}

TEST(CombinedPath, PaperExampleInvalidForI) {
  // §4.1 / Figure 3(e): the combined path through vertex i repeats j.
  auto ex = test::paper_example_graph();
  auto fwd = dijkstra(GraphView(ex.g), ex.s);
  auto rev = reverse_dijkstra(ex.g, ex.t);
  const vid_t i = ex.id.at("i");
  // The forward tree reaches i via s->f->j->i (8+1+3=12), the target path is
  // i->j->t — vertex j repeats, so the combined path must be rejected.
  EXPECT_DOUBLE_EQ(fwd.dist[i], 12.0);
  EXPECT_FALSE(combined_path_is_simple(fwd, rev, ex.s, i, ex.t));
}

TEST(CombinedPath, PaperExampleValidForQ) {
  auto ex = test::paper_example_graph();
  auto fwd = dijkstra(GraphView(ex.g), ex.s);
  auto rev = reverse_dijkstra(ex.g, ex.t);
  const vid_t q = ex.id.at("q");
  EXPECT_TRUE(combined_path_is_simple(fwd, rev, ex.s, q, ex.t));
  Path p = combined_path(fwd, rev, ex.s, q, ex.t);
  EXPECT_DOUBLE_EQ(p.dist, 14.0);  // s g l q t
  EXPECT_TRUE(is_simple(p));
  EXPECT_EQ(p.verts.front(), ex.s);
  EXPECT_EQ(p.verts.back(), ex.t);
}

TEST(CombinedPath, UnreachableHalvesRejected) {
  auto ex = test::paper_example_graph();
  auto fwd = dijkstra(GraphView(ex.g), ex.s);
  auto rev = reverse_dijkstra(ex.g, ex.t);
  // p has no out-edges: target half missing.
  EXPECT_FALSE(combined_path_is_simple(fwd, rev, ex.s, ex.id.at("p"), ex.t));
  // a is unreachable from s: source half missing.
  EXPECT_FALSE(combined_path_is_simple(fwd, rev, ex.s, ex.id.at("a"), ex.t));
  EXPECT_TRUE(combined_path(fwd, rev, ex.s, ex.id.at("a"), ex.t).empty());
}

TEST(PathLess, OrdersByDistThenLex) {
  PathLess less;
  EXPECT_TRUE(less({{0, 1}, 1.0}, {{0, 2}, 2.0}));
  EXPECT_TRUE(less({{0, 1}, 1.0}, {{0, 2}, 1.0}));
  EXPECT_FALSE(less({{0, 2}, 1.0}, {{0, 1}, 1.0}));
}

}  // namespace
}  // namespace peek::sssp
