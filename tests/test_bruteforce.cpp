#include "ksp/bruteforce.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace peek::ksp {
namespace {

TEST(Bruteforce, Diamond) {
  // 0 -> {1, 2} -> 3: exactly two simple paths.
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  auto all = enumerate_all_simple_paths(sssp::GraphView(g), 0, 3);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0].dist, 2.0);
  EXPECT_DOUBLE_EQ(all[1].dist, 3.0);
}

TEST(Bruteforce, KLimitsOutput) {
  auto g = graph::complete(5, {graph::WeightKind::kUniform01, 1});
  auto r = bruteforce_ksp(g, 0, 4, 3);
  EXPECT_EQ(r.paths.size(), 3u);
  test::check_ksp_invariants(g, 0, 4, r.paths);
}

TEST(Bruteforce, FewerPathsThanK) {
  auto g = graph::path(4, {graph::WeightKind::kUnit, 1});
  auto r = bruteforce_ksp(g, 0, 3, 10);
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(Bruteforce, NoPath) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  EXPECT_TRUE(bruteforce_ksp(g, 0, 2, 5).paths.empty());
}

TEST(Bruteforce, CyclesAreExcluded) {
  // 0 <-> 1 -> 2: the only simple paths to 2 are 0-1-2.
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}});
  auto all = enumerate_all_simple_paths(sssp::GraphView(g), 0, 2);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].verts, (std::vector<vid_t>{0, 1, 2}));
}

TEST(Bruteforce, ExplosionGuardThrows) {
  auto g = graph::complete(10, {graph::WeightKind::kUnit, 1});
  BruteforceOptions opts;
  opts.k = 5;
  opts.max_paths = 100;  // far fewer than the ~100k simple paths
  EXPECT_THROW(bruteforce_ksp(sssp::GraphView(g), 0, 9, opts),
               std::runtime_error);
}

TEST(Bruteforce, PaperExampleTopThree) {
  auto ex = test::paper_example_graph();
  auto r = bruteforce_ksp(ex.g, ex.s, ex.t, 3);
  ASSERT_EQ(r.paths.size(), 3u);
  // Figure 2(d): s f j t (11), s g l t (12), s g l q t (14).
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 11.0);
  EXPECT_DOUBLE_EQ(r.paths[1].dist, 12.0);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
  EXPECT_EQ(r.paths[0].verts,
            (std::vector<vid_t>{ex.s, ex.id.at("f"), ex.id.at("j"), ex.t}));
  EXPECT_EQ(r.paths[1].verts,
            (std::vector<vid_t>{ex.s, ex.id.at("g"), ex.id.at("l"), ex.t}));
  EXPECT_EQ(r.paths[2].verts,
            (std::vector<vid_t>{ex.s, ex.id.at("g"), ex.id.at("l"),
                                ex.id.at("q"), ex.t}));
}

TEST(Bruteforce, RespectsViewMasks) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  std::vector<std::uint8_t> valive{1, 0, 1, 1};
  sssp::GraphView view(g, valive.data(), nullptr);
  auto all = enumerate_all_simple_paths(view, 0, 3);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_DOUBLE_EQ(all[0].dist, 3.0);  // forced through 2
}

}  // namespace
}  // namespace peek::ksp
