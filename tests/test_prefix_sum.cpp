#include "parallel/prefix_sum.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace peek::par {
namespace {

TEST(PrefixSum, ExclusiveSmall) {
  std::vector<std::int64_t> in{3, 1, 4, 1, 5};
  auto out = exclusive_prefix_sum(in);
  EXPECT_EQ(out, (std::vector<std::int64_t>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, InclusiveSmall) {
  std::vector<std::int64_t> in{3, 1, 4, 1, 5};
  auto out = inclusive_prefix_sum(in);
  EXPECT_EQ(out, (std::vector<std::int64_t>{3, 4, 8, 9, 14}));
}

TEST(PrefixSum, ReturnsGrandTotal) {
  std::vector<std::int64_t> in{1, 2, 3};
  std::vector<std::int64_t> out(3);
  EXPECT_EQ(exclusive_prefix_sum(std::span<const std::int64_t>(in),
                                 std::span<std::int64_t>(out)),
            6);
}

TEST(PrefixSum, Empty) {
  std::vector<std::int64_t> in;
  EXPECT_TRUE(exclusive_prefix_sum(in).empty());
  EXPECT_TRUE(inclusive_prefix_sum(in).empty());
}

TEST(PrefixSum, SingleElement) {
  std::vector<std::int64_t> in{42};
  EXPECT_EQ(exclusive_prefix_sum(in), (std::vector<std::int64_t>{0}));
  EXPECT_EQ(inclusive_prefix_sum(in), (std::vector<std::int64_t>{42}));
}

TEST(PrefixSum, InPlaceAliasing) {
  std::vector<std::int64_t> v{1, 1, 1, 1};
  exclusive_prefix_sum(std::span<const std::int64_t>(v),
                       std::span<std::int64_t>(v));
  EXPECT_EQ(v, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

class PrefixSumSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PrefixSumSweep, MatchesSerialReference) {
  const size_t n = GetParam();
  std::mt19937_64 rng(n);
  std::uniform_int_distribution<std::int64_t> d(0, 100);
  std::vector<std::int64_t> in(n);
  for (auto& x : in) x = d(rng);
  std::vector<std::int64_t> expect(n);
  std::exclusive_scan(in.begin(), in.end(), expect.begin(), std::int64_t{0});
  EXPECT_EQ(exclusive_prefix_sum(in), expect);
  std::inclusive_scan(in.begin(), in.end(), expect.begin());
  EXPECT_EQ(inclusive_prefix_sum(in), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumSweep,
                         ::testing::Values(2, 7, 63, 64, 65, 1000, 4096,
                                           100000));

}  // namespace
}  // namespace peek::par
