#include "core/peek.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "ksp/sidetrack.hpp"
#include "ksp/yen.hpp"
#include "test_util.hpp"

namespace peek::core {
namespace {

PeekOptions p_opts(int k) {
  PeekOptions o;
  o.k = k;
  return o;
}

TEST(Peek, PaperExampleEndToEnd) {
  auto ex = test::paper_example_graph();
  auto r = peek_ksp(ex.g, ex.s, ex.t, p_opts(3));
  ASSERT_EQ(r.ksp.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.ksp.paths[0].dist, 11.0);
  EXPECT_DOUBLE_EQ(r.ksp.paths[1].dist, 12.0);
  EXPECT_DOUBLE_EQ(r.ksp.paths[2].dist, 14.0);
  EXPECT_DOUBLE_EQ(r.upper_bound, 14.0);
  EXPECT_EQ(r.kept_vertices, 7);
  test::check_ksp_invariants(ex.g, ex.s, ex.t, r.ksp.paths);
}

TEST(Peek, ResultsInOriginalIdsAfterRegeneration) {
  auto ex = test::paper_example_graph();
  PeekOptions opts = p_opts(3);
  opts.compaction = PeekOptions::Compaction::kRegeneration;
  auto r = peek_ksp(ex.g, ex.s, ex.t, opts);
  ASSERT_EQ(r.ksp.paths.size(), 3u);
  EXPECT_EQ(r.strategy_used, compact::Strategy::kRegeneration);
  // Paths must reference the ORIGINAL ids (s == 14 in alphabet order).
  EXPECT_EQ(r.ksp.paths[0].verts.front(), ex.s);
  EXPECT_EQ(r.ksp.paths[0].verts.back(), ex.t);
  test::check_ksp_invariants(ex.g, ex.s, ex.t, r.ksp.paths);
}

TEST(Peek, AdaptiveSelectsRegenerationWhenPruningBites) {
  // Heavy pruning on a big sparse graph -> m_r << alpha * m.
  auto g = graph::rmat(11, 8);
  auto r = peek_ksp(g, 1, 1000, p_opts(4));
  if (r.ksp.paths.empty()) GTEST_SKIP() << "unreachable pair";
  EXPECT_EQ(r.strategy_used, compact::Strategy::kRegeneration);
}

TEST(Peek, AdaptiveSelectsEdgeSwapWhenLittlePruned) {
  // On a tiny dense clique every vertex lies on some short path; the
  // remaining ratio is high, so edge-swap wins.
  auto g = graph::complete(12, {graph::WeightKind::kUnit, 1});
  PeekOptions opts = p_opts(32);
  opts.alpha = 0.2;
  auto r = peek_ksp(g, 0, 11, opts);
  EXPECT_EQ(r.strategy_used, compact::Strategy::kEdgeSwap);
  EXPECT_EQ(r.ksp.paths.size(), 32u);
}

TEST(Peek, AllCompactionModesAgree) {
  auto g = test::random_graph(200, 1600, 301);
  std::vector<std::vector<sssp::Path>> results;
  for (auto mode : {PeekOptions::Compaction::kAdaptive,
                    PeekOptions::Compaction::kEdgeSwap,
                    PeekOptions::Compaction::kRegeneration,
                    PeekOptions::Compaction::kStatusArray}) {
    PeekOptions opts = p_opts(8);
    opts.compaction = mode;
    results.push_back(peek_ksp(g, 0, 100, opts).ksp.paths);
  }
  for (size_t i = 1; i < results.size(); ++i)
    test::expect_same_distances(results[0], results[i]);
}

TEST(Peek, PruneOffMatchesPruneOn) {
  // The Figure 8 "Base" configuration must return identical paths.
  auto g = test::random_graph(150, 1200, 303);
  PeekOptions on = p_opts(8);
  PeekOptions off = p_opts(8);
  off.prune = false;
  auto a = peek_ksp(g, 0, 75, on);
  auto b = peek_ksp(g, 0, 75, off);
  test::expect_same_distances(a.ksp.paths, b.ksp.paths);
}

TEST(Peek, TheoremFourThree) {
  // KSP on pruned graph == KSP on original graph, across seeds and K.
  for (std::uint64_t seed : {311u, 312u, 313u, 314u, 315u}) {
    auto g = test::random_graph(32, 90, seed);
    auto oracle = ksp::bruteforce_ksp(g, 0, 16, 10);
    auto mine = peek_ksp(g, 0, 16, p_opts(10));
    test::expect_same_distances(oracle.paths, mine.ksp.paths);
  }
}

TEST(Peek, UnreachablePairGivesEmpty) {
  auto g = graph::from_edges(4, {{1, 0, 1.0}, {2, 3, 1.0}});
  auto r = peek_ksp(g, 0, 3, p_opts(4));
  EXPECT_TRUE(r.ksp.paths.empty());
  EXPECT_EQ(r.kept_vertices, 0);
}

TEST(Peek, TimingsPopulated) {
  auto g = test::random_graph(200, 1600, 317);
  auto r = peek_ksp(g, 0, 100, p_opts(8));
  EXPECT_GT(r.prune_seconds, 0.0);
  EXPECT_GE(r.compact_seconds, 0.0);
  EXPECT_GE(r.total_seconds(), r.prune_seconds);
}

TEST(Peek, ParallelMatchesSerial) {
  auto g = test::random_graph(200, 1600, 319);
  PeekOptions par = p_opts(8);
  par.parallel = true;
  auto a = peek_ksp(g, 0, 100, p_opts(8));
  auto b = peek_ksp(g, 0, 100, par);
  test::expect_same_distances(a.ksp.paths, b.ksp.paths);
}

TEST(Peek, TightEdgePrunePreservesAnswers) {
  for (std::uint64_t seed : {321u, 322u, 323u}) {
    auto g = test::random_graph(64, 512, seed);
    PeekOptions tight = p_opts(8);
    tight.tight_edge_prune = true;
    auto a = peek_ksp(g, 0, 32, p_opts(8));
    auto b = peek_ksp(g, 0, 32, tight);
    test::expect_same_distances(a.ksp.paths, b.ksp.paths);
  }
}

TEST(PeekWithAlgorithm, BoostsYenAndSb) {
  // §1.3 novelty (iii): K upper bound pruning as a preprocessing step for
  // other KSP algorithms.
  auto g = test::random_graph(100, 800, 331);
  ksp::KspOptions ko;
  ko.k = 8;
  auto plain = ksp::yen_ksp(g, 0, 50, ko);
  auto pre_yen = peek_with_algorithm(
      g, 0, 50, p_opts(8), [&](const sssp::BiView& v, vid_t s, vid_t t) {
        return ksp::yen_ksp(v, s, t, ko);
      });
  test::expect_same_distances(plain.paths, pre_yen.ksp.paths);

  ksp::SidetrackOptions so;
  so.base = ko;
  auto pre_sb = peek_with_algorithm(
      g, 0, 50, p_opts(8), [&](const sssp::BiView& v, vid_t s, vid_t t) {
        return ksp::sb_ksp(v, s, t, so);
      });
  test::expect_same_distances(plain.paths, pre_sb.ksp.paths);
}

}  // namespace
}  // namespace peek::core
