#include "dyn/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace peek::dyn {
namespace {

std::vector<std::pair<vid_t, weight_t>> neighbors_of(const DynamicGraph& g,
                                                     vid_t v) {
  std::vector<std::pair<vid_t, weight_t>> out;
  g.for_each_neighbor(v, [&](vid_t w, weight_t wt) { out.push_back({w, wt}); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DynamicGraph, InsertAndIterate) {
  DynamicGraph g(3);
  g.insert_edge(0, 1, 1.5);
  g.insert_edge(0, 2, 2.5);
  EXPECT_EQ(g.num_edges(), 2);
  auto n = neighbors_of(g, 0);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].first, 1);
  EXPECT_DOUBLE_EQ(n[1].second, 2.5);
}

TEST(DynamicGraph, InlineOverflowBoundary) {
  // Push past the inline level into the sorted overflow.
  DynamicGraph g(40);
  for (vid_t v = 1; v < 30; ++v) g.insert_edge(0, v, 1.0);
  EXPECT_EQ(g.out_degree(0), 29);
  EXPECT_EQ(neighbors_of(g, 0).size(), 29u);
}

TEST(DynamicGraph, DeleteFromInline) {
  DynamicGraph g(5);
  g.insert_edge(0, 1, 1.0);
  g.insert_edge(0, 2, 2.0);
  EXPECT_TRUE(g.delete_edge(0, 1));
  EXPECT_FALSE(g.delete_edge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 1);
  auto n = neighbors_of(g, 0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0].first, 2);
}

TEST(DynamicGraph, DeleteFromOverflow) {
  DynamicGraph g(40);
  for (vid_t v = 1; v < 20; ++v) g.insert_edge(0, v, static_cast<weight_t>(v));
  // Vertex 15 certainly lives in the overflow level.
  EXPECT_TRUE(g.delete_edge(0, 15));
  EXPECT_EQ(g.out_degree(0), 18);
  auto n = neighbors_of(g, 0);
  for (const auto& [w, wt] : n) EXPECT_NE(w, 15);
}

TEST(DynamicGraph, DeleteBackfillsInlineFromOverflow) {
  DynamicGraph g(40);
  for (vid_t v = 1; v <= 12; ++v) g.insert_edge(0, v, 1.0);
  // Delete an inline edge; an overflow edge should take its slot, keeping
  // the total intact.
  EXPECT_TRUE(g.delete_edge(0, 1));
  EXPECT_EQ(g.out_degree(0), 11);
  EXPECT_EQ(neighbors_of(g, 0).size(), 11u);
}

TEST(DynamicGraph, DeleteVertexHidesInEdges) {
  DynamicGraph g(3);
  g.insert_edge(0, 1, 1.0);
  g.insert_edge(1, 2, 1.0);
  g.delete_vertex(1);
  EXPECT_FALSE(g.vertex_alive(1));
  EXPECT_EQ(g.out_degree(1), 0);
  // 0's edge to 1 is skipped at traversal time.
  EXPECT_TRUE(neighbors_of(g, 0).empty());
}

TEST(DynamicGraph, BulkLoadFromCsrRoundTrips) {
  auto csr = test::random_graph(60, 500, 501);
  DynamicGraph g(csr);
  EXPECT_EQ(g.num_edges(), csr.num_edges());
  auto back = g.to_csr();
  EXPECT_EQ(back.num_vertices(), csr.num_vertices());
  EXPECT_EQ(back.num_edges(), csr.num_edges());
  for (vid_t v = 0; v < 60; ++v) EXPECT_EQ(back.degree(v), csr.degree(v));
}

TEST(DynamicGraph, MassDeletionMatchesFilteredCsr) {
  auto csr = test::random_graph(50, 400, 503);
  DynamicGraph g(csr);
  for (vid_t v = 25; v < 50; ++v) g.delete_vertex(v);
  auto back = g.to_csr();
  eid_t expected = 0;
  for (vid_t u = 0; u < 25; ++u) {
    for (eid_t e = csr.edge_begin(u); e < csr.edge_end(u); ++e)
      if (csr.edge_target(e) < 25) expected++;
  }
  EXPECT_EQ(back.num_edges(), expected);
}

TEST(DynamicGraph, PromotesHubsToTreeLevel) {
  DynamicGraph g(300);
  // Push far past the tree threshold.
  for (vid_t v = 1; v <= 250; ++v) g.insert_edge(0, v, 1.0);
  EXPECT_EQ(g.level_of(0), DynamicGraph::Level::kTree);
  EXPECT_EQ(g.out_degree(0), 250);
  EXPECT_EQ(neighbors_of(g, 0).size(), 250u);
  // Deletion still works at the tree level.
  EXPECT_TRUE(g.delete_edge(0, 200));
  EXPECT_FALSE(g.delete_edge(0, 200));
  EXPECT_EQ(g.out_degree(0), 249);
}

TEST(DynamicGraph, LowDegreeStaysInline) {
  DynamicGraph g(10);
  for (vid_t v = 1; v <= 5; ++v) g.insert_edge(0, v, 1.0);
  EXPECT_EQ(g.level_of(0), DynamicGraph::Level::kInline);
  for (vid_t v = 6; v <= 9; ++v) g.insert_edge(0, v, 1.0);
  EXPECT_EQ(g.level_of(0), DynamicGraph::Level::kOverflow);
}

TEST(DynamicGraph, TreeLevelRoundTripsThroughCsr) {
  DynamicGraph g(300);
  for (vid_t v = 1; v <= 250; ++v) g.insert_edge(0, v, double(v));
  auto csr = g.to_csr();
  EXPECT_EQ(csr.degree(0), 250);
  EXPECT_DOUBLE_EQ(csr.edge_weight(csr.find_edge(0, 42)), 42.0);
}

}  // namespace
}  // namespace peek::dyn

