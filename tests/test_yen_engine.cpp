// Direct tests of the shared deviation-engine internals that every Yen-family
// algorithm depends on (banned-edge computation, cumulative distances,
// Lawler indices, dedup interplay).
#include "ksp/yen_engine.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::ksp::detail {
namespace {

TEST(CumulativeDistances, SumsAlongPath) {
  auto g = graph::from_edges(4, {{0, 1, 1.5}, {1, 2, 2.5}, {2, 3, 3.0}});
  sssp::GraphView view(g);
  auto cum = cumulative_distances(view, {0, 1, 2, 3});
  ASSERT_EQ(cum.size(), 4u);
  EXPECT_DOUBLE_EQ(cum[0], 0.0);
  EXPECT_DOUBLE_EQ(cum[1], 1.5);
  EXPECT_DOUBLE_EQ(cum[2], 4.0);
  EXPECT_DOUBLE_EQ(cum[3], 7.0);
}

TEST(CumulativeDistances, MissingEdgeIsInf) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}});
  sssp::GraphView view(g);
  auto cum = cumulative_distances(view, {0, 2});
  EXPECT_EQ(cum[1], kInfDist);
}

TEST(BannedEdges, OnlyPrefixSharersContribute) {
  // Accepted paths: P = 0-1-2-3 and Q = 0-1-4-3 share the prefix {0,1}.
  // R = 0-5-3 does not.
  auto g = graph::from_edges(
      6, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {1, 4, 1.0}, {4, 3, 1.0},
          {0, 5, 1.0}, {5, 3, 1.0}});
  sssp::GraphView view(g);
  std::vector<Candidate> accepted;
  accepted.push_back({{{0, 1, 2, 3}, 3.0}, 0});
  accepted.push_back({{{0, 1, 4, 3}, 3.0}, 1});
  accepted.push_back({{{0, 5, 3}, 2.0}, 0});

  // Deviating at position 1 of P (vertex 1): both (1,2) and (1,4) banned.
  auto banned = banned_edges_at(view, accepted, accepted[0].path.verts, 1);
  EXPECT_EQ(banned.size(), 2u);
  EXPECT_TRUE(banned.count(g.find_edge(1, 2)));
  EXPECT_TRUE(banned.count(g.find_edge(1, 4)));

  // Deviating at position 0 (vertex 0): edges (0,1) [from P and Q] and
  // (0,5) [from R].
  banned = banned_edges_at(view, accepted, accepted[0].path.verts, 0);
  EXPECT_EQ(banned.size(), 2u);
  EXPECT_TRUE(banned.count(g.find_edge(0, 1)));
  EXPECT_TRUE(banned.count(g.find_edge(0, 5)));
}

TEST(BannedEdges, ShortAcceptedPathsIgnored) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  sssp::GraphView view(g);
  std::vector<Candidate> accepted;
  accepted.push_back({{{0, 1}, 1.0}, 0});  // too short for position 1
  auto banned = banned_edges_at(view, accepted, {0, 1, 2}, 1);
  EXPECT_TRUE(banned.empty());
}

TEST(Engine, DijkstraSolverEqualsOracle) {
  // The engine + a plain banned-Dijkstra solver IS Yen; verify against the
  // oracle through the detail interface directly.
  auto g = test::random_graph(30, 90, 1001);
  sssp::BiView bi = sssp::BiView::of(g);
  KspOptions opts;
  opts.k = 10;
  DeviationSolver solver = [&](const DeviationContext& ctx) {
    sssp::DijkstraOptions dj;
    dj.target = 15;
    dj.bans = {ctx.banned_vertices, &ctx.banned_edges};
    auto r = sssp::dijkstra(bi.fwd, ctx.deviation_vertex, dj);
    return sssp::path_from_parents(r, ctx.deviation_vertex, 15);
  };
  auto mine = run_yen_engine(bi.fwd, 0, 15, opts, solver);
  auto oracle = bruteforce_ksp(g, 0, 15, 10);
  test::expect_same_distances(oracle.paths, mine.paths);
}

TEST(Engine, LawlerIndexRecorded) {
  auto ex = test::paper_example_graph();
  sssp::BiView bi = sssp::BiView::of(ex.g);
  KspOptions opts;
  opts.k = 3;
  DeviationSolver solver = [&](const DeviationContext& ctx) {
    sssp::DijkstraOptions dj;
    dj.target = ex.t;
    dj.bans = {ctx.banned_vertices, &ctx.banned_edges};
    auto r = sssp::dijkstra(bi.fwd, ctx.deviation_vertex, dj);
    return sssp::path_from_parents(r, ctx.deviation_vertex, ex.t);
  };
  auto r = run_yen_engine(bi.fwd, ex.s, ex.t, opts, solver);
  ASSERT_EQ(r.paths.size(), 3u);
  // Candidate accounting is exposed through stats.
  EXPECT_GT(r.stats.candidates_generated, 0);
}

TEST(Engine, HookSeesEveryAcceptedPath) {
  auto g = test::random_graph(40, 160, 1003);
  sssp::BiView bi = sssp::BiView::of(g);
  KspOptions opts;
  opts.k = 6;
  int hook_calls = 0;
  EngineHooks hooks;
  hooks.on_path_accepted = [&](const sssp::Path& p, int dev) {
    hook_calls++;
    EXPECT_FALSE(p.verts.empty());
    EXPECT_GE(dev, 0);
  };
  DeviationSolver solver = [&](const DeviationContext& ctx) {
    sssp::DijkstraOptions dj;
    dj.target = 20;
    dj.bans = {ctx.banned_vertices, &ctx.banned_edges};
    auto r = sssp::dijkstra(bi.fwd, ctx.deviation_vertex, dj);
    return sssp::path_from_parents(r, ctx.deviation_vertex, 20);
  };
  auto r = run_yen_engine(bi.fwd, 0, 20, opts, solver, hooks);
  // Every accepted path EXCEPT the K-th gets its deviations explored (the
  // K-th terminates the loop before expansion), so the hook fires K-1 times
  // when the quota is reached, K times when the path space runs dry first.
  if (static_cast<int>(r.paths.size()) == opts.k) {
    EXPECT_EQ(hook_calls, static_cast<int>(r.paths.size()) - 1);
  } else {
    EXPECT_EQ(hook_calls, static_cast<int>(r.paths.size()));
  }
}

}  // namespace
}  // namespace peek::ksp::detail
