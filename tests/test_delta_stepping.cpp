#include "sssp/delta_stepping.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_util.hpp"

namespace peek::sssp {
namespace {

void expect_same_distances(const SsspResult& a, const SsspResult& b) {
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (size_t v = 0; v < a.dist.size(); ++v) {
    if (a.dist[v] == kInfDist) {
      EXPECT_EQ(b.dist[v], kInfDist) << "vertex " << v;
    } else {
      EXPECT_NEAR(a.dist[v], b.dist[v], 1e-9) << "vertex " << v;
    }
  }
}

TEST(DeltaStepping, Line) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}});
  auto r = delta_stepping(GraphView(g), 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 6.0);
  EXPECT_EQ(r.parent[3], 2);
}

TEST(DeltaStepping, InvalidSource) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  EXPECT_EQ(delta_stepping(GraphView(g), -2).dist[0], kInfDist);
}

struct SweepParam {
  int n;
  std::uint64_t seed;
  bool unit;
  weight_t delta;
};

class DeltaVsDijkstra : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DeltaVsDijkstra, DistancesMatchDijkstra) {
  const auto p = GetParam();
  auto g = test::random_graph(p.n, static_cast<eid_t>(p.n) * 8, p.seed, p.unit);
  auto dj = dijkstra(GraphView(g), 0);
  DeltaSteppingOptions opts;
  opts.delta = p.delta;
  auto ds = delta_stepping(GraphView(g), 0, opts);
  expect_same_distances(dj, ds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaVsDijkstra,
    ::testing::Values(SweepParam{50, 1, false, 0}, SweepParam{50, 2, true, 0},
                      SweepParam{200, 3, false, 0.05},
                      SweepParam{200, 4, false, 10.0},  // one big bucket
                      SweepParam{200, 5, false, 1e-3},  // many tiny buckets
                      SweepParam{500, 6, false, 0},
                      SweepParam{500, 7, true, 0.5}));

TEST(DeltaStepping, SerialFlagGivesSameAnswer) {
  auto g = test::random_graph(300, 2400, 9);
  DeltaSteppingOptions par_opts;
  DeltaSteppingOptions ser_opts;
  ser_opts.parallel = false;
  expect_same_distances(delta_stepping(GraphView(g), 0, par_opts),
                        delta_stepping(GraphView(g), 0, ser_opts));
}

TEST(DeltaStepping, RespectsBans) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 3, 1.0}, {0, 2, 2.0},
                                 {2, 3, 2.0}});
  std::vector<std::uint8_t> banned(4, 0);
  banned[1] = 1;
  DeltaSteppingOptions opts;
  opts.bans.vertices = banned.data();
  auto r = delta_stepping(GraphView(g), 0, opts);
  EXPECT_DOUBLE_EQ(r.dist[3], 4.0);
  EXPECT_EQ(r.dist[1], kInfDist);
  EXPECT_EQ(r.parent[3], 2);
}

TEST(DeltaStepping, EarlyExitTargetSettled) {
  auto g = graph::grid(15, 15, {graph::WeightKind::kUniform01, 4});
  DeltaSteppingOptions opts;
  opts.target = 224;
  auto early = delta_stepping(GraphView(g), 0, opts);
  auto full = dijkstra(GraphView(g), 0);
  EXPECT_NEAR(early.dist[224], full.dist[224], 1e-9);
}

TEST(DeltaStepping, ParentsFormTree) {
  auto g = test::random_graph(300, 2000, 13);
  auto r = delta_stepping(GraphView(g), 0);
  for (vid_t v = 1; v < 300; ++v) {
    if (r.dist[v] == kInfDist) continue;
    const vid_t p = r.parent[v];
    ASSERT_NE(p, kNoVertex) << v;
    const eid_t e = g.find_edge(p, v);
    ASSERT_NE(e, kNoEdge);
    EXPECT_NEAR(r.dist[p] + g.edge_weight(e), r.dist[v], 1e-12);
  }
}

TEST(ReverseDeltaStepping, MatchesReverseDijkstra) {
  auto g = test::random_graph(200, 1600, 15);
  auto a = reverse_dijkstra(g, 7);
  auto b = reverse_delta_stepping(g, 7);
  expect_same_distances(a, b);
}

}  // namespace
}  // namespace peek::sssp
