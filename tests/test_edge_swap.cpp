#include "compact/edge_swap.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::compact {
namespace {

TEST(EdgeSwap, PacksValidEdgesToFront) {
  // Vertex 0 has edges to 1, 2, 3; delete vertex 2.
  auto g = graph::from_edges(
      4, {{0, 1, 1.0}, {0, 2, 2.0}, {0, 3, 3.0}, {1, 3, 1.0}});
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep{1, 1, 0, 1};
  const eid_t remaining = edge_swap_compact(mc, keep.data());
  EXPECT_EQ(remaining, 3);  // 0->1, 0->3, 1->3
  auto view = mc.view();
  EXPECT_EQ(view.edge_end(0) - view.edge_begin(0), 2);
  // In-range targets are exactly {1, 3}.
  std::vector<vid_t> targets;
  for (eid_t e = view.edge_begin(0); e < view.edge_end(0); ++e)
    targets.push_back(view.edge_target(e));
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<vid_t>{1, 3}));
}

TEST(EdgeSwap, WeightPredicate) {
  auto g = graph::from_edges(2, {{0, 1, 5.0}});
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep{1, 1};
  const eid_t remaining = edge_swap_compact(
      mc, keep.data(), [](vid_t, vid_t, weight_t w) { return w <= 2.0; });
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(mc.view().edge_end(0), mc.view().edge_begin(0));
}

TEST(EdgeSwap, ReverseViewPackedSymmetrically) {
  auto g = graph::from_edges(3, {{0, 2, 1.0}, {1, 2, 2.0}});
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep{1, 0, 1};  // kill 1
  edge_swap_compact(mc, keep.data());
  auto rev = mc.reverse_view();
  // Vertex 2's in-edges: only from 0 remains.
  EXPECT_EQ(rev.edge_end(2) - rev.edge_begin(2), 1);
  EXPECT_EQ(rev.edge_target(rev.edge_begin(2)), 0);
}

TEST(EdgeSwap, WeightsTravelWithTargets) {
  auto g = graph::from_edges(3, {{0, 1, 1.5}, {0, 2, 2.5}});
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep{1, 0, 1};
  edge_swap_compact(mc, keep.data());
  auto view = mc.view();
  ASSERT_EQ(view.edge_end(0) - view.edge_begin(0), 1);
  EXPECT_EQ(view.edge_target(view.edge_begin(0)), 2);
  EXPECT_DOUBLE_EQ(view.edge_weight(view.edge_begin(0)), 2.5);
}

TEST(EdgeSwap, SsspEquivalentToFilteredGraph) {
  auto g = test::random_graph(100, 900, 61);
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep(100, 1);
  for (vid_t v = 50; v < 100; v += 2) keep[v] = 0;
  auto pred = [](vid_t, vid_t, weight_t w) { return w <= 0.7; };
  edge_swap_compact(mc, keep.data(), pred);

  graph::Builder b(100);
  for (vid_t u = 0; u < 100; ++u) {
    if (!keep[u]) continue;
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      if (keep[g.edge_target(e)] && g.edge_weight(e) <= 0.7)
        b.add_edge(u, g.edge_target(e), g.edge_weight(e));
    }
  }
  auto ref_g = b.build();
  auto ref = sssp::dijkstra(sssp::GraphView(ref_g), 0);
  auto got = sssp::dijkstra(mc.view(), 0);
  for (vid_t v = 0; v < 100; ++v) {
    if (ref.dist[v] == kInfDist) EXPECT_EQ(got.dist[v], kInfDist) << v;
    else EXPECT_NEAR(got.dist[v], ref.dist[v], 1e-9) << v;
  }
}

TEST(EdgeSwap, RepeatedRoundsOnlyShrink) {
  auto g = test::random_graph(60, 500, 63);
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep(60, 1);
  keep[3] = 0;
  const eid_t r1 = edge_swap_compact(mc, keep.data());
  keep[7] = 0;
  const eid_t r2 = edge_swap_compact(mc, keep.data());
  EXPECT_LE(r2, r1);
  EXPECT_FALSE(mc.view().vertex_alive(3));
  EXPECT_FALSE(mc.view().vertex_alive(7));
  EXPECT_EQ(mc.num_valid_edges(), r2);
}

TEST(EdgeSwap, SerialParallelAgree) {
  auto g = test::random_graph(80, 700, 67);
  std::vector<std::uint8_t> keep(80, 1);
  for (vid_t v = 0; v < 80; v += 3) keep[v] = 0;
  MutableCsr a(g), b(g);
  const eid_t ra = edge_swap_compact(a, keep.data(), nullptr, {.parallel = false});
  const eid_t rb = edge_swap_compact(b, keep.data(), nullptr, {.parallel = true});
  EXPECT_EQ(ra, rb);
}

TEST(EdgeSwap, AllDeleted) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  MutableCsr mc(g);
  std::vector<std::uint8_t> keep{0, 0};
  EXPECT_EQ(edge_swap_compact(mc, keep.data()), 0);
  EXPECT_EQ(mc.num_valid_edges(), 0);
}

}  // namespace
}  // namespace peek::compact
