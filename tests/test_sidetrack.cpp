#include "ksp/sidetrack.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "ksp/yen.hpp"
#include "test_util.hpp"

namespace peek::ksp {
namespace {

KspOptions k_opts(int k) {
  KspOptions o;
  o.k = k;
  return o;
}

TEST(Sidetrack, SbPaperExample) {
  auto ex = test::paper_example_graph();
  auto r = sb_ksp(ex.g, ex.s, ex.t, k_opts(3));
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 11.0);
  EXPECT_DOUBLE_EQ(r.paths[1].dist, 12.0);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
  test::check_ksp_invariants(ex.g, ex.s, ex.t, r.paths);
}

TEST(Sidetrack, SbStarPaperExample) {
  auto ex = test::paper_example_graph();
  auto r = sb_star_ksp(ex.g, ex.s, ex.t, k_opts(3));
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
}

TEST(Sidetrack, StoresTrees) {
  // SB's signature cost: multiple resident reverse trees.
  auto g = test::random_graph(120, 960, 131);
  auto r = sb_ksp(g, 0, 60, k_opts(10));
  if (r.paths.empty()) GTEST_SKIP() << "unreachable pair";
  EXPECT_GT(r.stats.trees_stored, 1u);
}

TEST(Sidetrack, TreeShortcutsAnswerDeviations) {
  // Per-prefix trees answer most deviations without a fallback SSSP.
  auto g = test::random_graph(120, 960, 133);
  auto yen = yen_ksp(g, 0, 60, k_opts(12));
  auto sb = sb_ksp(g, 0, 60, k_opts(12));
  if (yen.paths.empty()) GTEST_SKIP() << "unreachable pair";
  test::expect_same_distances(yen.paths, sb.paths);
  EXPECT_GT(sb.stats.tree_shortcuts, 0);
}

TEST(Sidetrack, SbAndSbStarAgree) {
  for (std::uint64_t seed : {141u, 142u, 143u}) {
    auto g = test::random_graph(90, 720, seed);
    auto a = sb_ksp(g, 1, 45, k_opts(10));
    auto b = sb_star_ksp(g, 1, 45, k_opts(10));
    test::expect_same_distances(a.paths, b.paths);
  }
}

TEST(Sidetrack, TreePoolCapRespected) {
  auto g = test::random_graph(100, 800, 151);
  SidetrackOptions so;
  so.base = k_opts(16);
  so.max_resident_trees = 4;
  auto capped = sb_ksp(sssp::BiView::of(g), 0, 50, so);
  EXPECT_LE(capped.stats.trees_stored, 4u);
  // Correctness unchanged by eviction.
  auto uncapped = sb_ksp(g, 0, 50, k_opts(16));
  test::expect_same_distances(capped.paths, uncapped.paths);
}

TEST(Sidetrack, MatchesOracleOnDenseDag) {
  auto g = graph::layered_dag(4, 4, 3, {graph::WeightKind::kUniform01, 11}, 19);
  auto oracle = bruteforce_ksp(g, 0, 13, 12);
  test::expect_same_distances(sb_ksp(g, 0, 13, k_opts(12)).paths,
                              oracle.paths);
  test::expect_same_distances(sb_star_ksp(g, 0, 13, k_opts(12)).paths,
                              oracle.paths);
}

TEST(Sidetrack, UnreachableAndInvalid) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  EXPECT_TRUE(sb_ksp(g, 0, 2, k_opts(4)).paths.empty());
  EXPECT_TRUE(sb_star_ksp(g, 0, 2, k_opts(0)).paths.empty());
}

}  // namespace
}  // namespace peek::ksp
