#include "dist/dist_sssp.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::dist {
namespace {

void expect_matches_serial(const graph::CsrGraph& g, vid_t source, int ranks) {
  auto ref = sssp::dijkstra(sssp::GraphView(g), source);
  run_ranks(ranks, [&](Comm& c) {
    auto lg = make_local_graph(g, c.rank(), c.size());
    auto r = dist_delta_stepping(c, lg, source);
    std::vector<weight_t> dist;
    std::vector<vid_t> parent;
    gather_global(c, lg, r, dist, parent);
    ASSERT_EQ(dist.size(), static_cast<size_t>(g.num_vertices()));
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (ref.dist[v] == kInfDist) {
        EXPECT_EQ(dist[v], kInfDist) << "v " << v << " ranks " << ranks;
      } else {
        EXPECT_NEAR(dist[v], ref.dist[v], 1e-9) << "v " << v;
      }
    }
    // Parents form a valid tight tree.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      if (v == source || dist[v] == kInfDist) continue;
      const vid_t p = parent[v];
      ASSERT_NE(p, kNoVertex) << v;
      const eid_t e = g.find_edge(p, v);
      ASSERT_NE(e, kNoEdge) << v;
      EXPECT_NEAR(dist[p] + g.edge_weight(e), dist[v], 1e-9) << v;
    }
  });
}

TEST(DistSssp, MatchesSerialOnRandomGraph) {
  auto g = test::random_graph(200, 1600, 701);
  expect_matches_serial(g, 0, 4);
}

TEST(DistSssp, VariousRankCounts) {
  auto g = test::random_graph(120, 960, 703);
  for (int ranks : {1, 2, 3, 8}) expect_matches_serial(g, 5, ranks);
}

TEST(DistSssp, UnitWeights) {
  auto g = test::random_graph(150, 1500, 705, /*unit_weights=*/true);
  expect_matches_serial(g, 3, 4);
}

TEST(DistSssp, GridLongDiameter) {
  auto g = graph::grid(12, 12, {graph::WeightKind::kUniform01, 7});
  expect_matches_serial(g, 0, 4);
}

TEST(DistSssp, SourceOnNonzeroRank) {
  auto g = test::random_graph(100, 800, 707);
  expect_matches_serial(g, 99, 4);  // owned by the last rank
}

TEST(DistSssp, DisconnectedGraph) {
  // Two components: distances in the far component must stay inf everywhere.
  graph::Builder b(10);
  for (vid_t v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1, 1.0);
  for (vid_t v = 5; v + 1 < 10; ++v) b.add_edge(v, v + 1, 1.0);
  auto g = b.build();
  expect_matches_serial(g, 0, 3);
}

TEST(DistSssp, CountsRelaxedEdges) {
  auto g = test::random_graph(100, 800, 709);
  run_ranks(2, [&](Comm& c) {
    auto lg = make_local_graph(g, c.rank(), c.size());
    auto r = dist_delta_stepping(c, lg, 0);
    const std::int64_t total = c.allreduce_sum(r.edges_relaxed);
    EXPECT_GT(total, 0);
  });
}

}  // namespace
}  // namespace peek::dist
