#include "dist/sample_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <random>

namespace peek::dist {
namespace {

/// Runs the collective and checks: globally sorted, same multiset.
void check_sample_sort(int ranks, size_t per_rank, std::uint64_t seed) {
  std::vector<std::vector<double>> inputs(static_cast<size_t>(ranks));
  std::vector<double> all;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(0, 100);
  for (auto& in : inputs) {
    in.resize(per_rank);
    for (auto& x : in) {
      x = d(rng);
      all.push_back(x);
    }
  }
  std::sort(all.begin(), all.end());

  std::vector<std::vector<double>> outputs(static_cast<size_t>(ranks));
  run_ranks(ranks, [&](Comm& c) {
    outputs[static_cast<size_t>(c.rank())] =
        dist_sample_sort(c, inputs[static_cast<size_t>(c.rank())]);
  });

  std::vector<double> merged;
  for (int r = 0; r < ranks; ++r) {
    EXPECT_TRUE(std::is_sorted(outputs[static_cast<size_t>(r)].begin(),
                               outputs[static_cast<size_t>(r)].end()));
    if (r > 0 && !outputs[static_cast<size_t>(r)].empty() &&
        !outputs[static_cast<size_t>(r) - 1].empty()) {
      EXPECT_LE(outputs[static_cast<size_t>(r) - 1].back(),
                outputs[static_cast<size_t>(r)].front());
    }
    merged.insert(merged.end(), outputs[static_cast<size_t>(r)].begin(),
                  outputs[static_cast<size_t>(r)].end());
  }
  EXPECT_EQ(merged, all);
}

TEST(SampleSort, SingleRank) { check_sample_sort(1, 100, 1); }
TEST(SampleSort, TwoRanks) { check_sample_sort(2, 500, 2); }
TEST(SampleSort, ManyRanks) { check_sample_sort(8, 300, 3); }
TEST(SampleSort, TinyInputs) { check_sample_sort(4, 2, 4); }

TEST(SampleSort, EmptyOnSomeRanks) {
  std::vector<std::vector<double>> outputs(3);
  run_ranks(3, [&](Comm& c) {
    std::vector<double> mine;
    if (c.rank() == 1) mine = {5.0, 1.0, 3.0};
    outputs[static_cast<size_t>(c.rank())] = dist_sample_sort(c, mine);
  });
  std::vector<double> merged;
  for (auto& o : outputs) merged.insert(merged.end(), o.begin(), o.end());
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(SampleSort, DuplicateKeys) {
  std::vector<std::vector<double>> outputs(4);
  run_ranks(4, [&](Comm& c) {
    std::vector<double> mine(50, static_cast<double>(c.rank() % 2));
    outputs[static_cast<size_t>(c.rank())] = dist_sample_sort(c, mine);
  });
  size_t total = 0;
  for (auto& o : outputs) {
    EXPECT_TRUE(std::is_sorted(o.begin(), o.end()));
    total += o.size();
  }
  EXPECT_EQ(total, 200u);
}

}  // namespace
}  // namespace peek::dist
