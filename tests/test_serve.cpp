// Serving-layer tests: ArtifactCache mechanics (LRU, byte budget, sharding,
// generation invalidation) and the cache-correctness property — every serve
// path (cold miss, snapshot hit, stream extension, tree reuse, coalesced
// duplicate, dynamic re-snapshot, uncached fallback) must return answers
// bit-identical to a fresh core::peek_ksp on the same query.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "core/peek.hpp"
#include "serve/query_engine.hpp"
#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::serve {
namespace {

/// Fresh, uncached PeeK on the same query — the ground truth the serving
/// layer must be indistinguishable from.
std::vector<sssp::Path> fresh_peek(const graph::CsrGraph& g, vid_t s, vid_t t,
                                   int k) {
  core::PeekOptions po;
  po.k = k;
  return core::peek_ksp(g, s, t, po).ksp.paths;
}

/// Bit-identical: same count, same vertex sequences, same (exact) distances.
void expect_identical(const std::vector<sssp::Path>& got,
                      const std::vector<sssp::Path>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].verts, want[i].verts) << "path " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "path " << i;
  }
}

// ---------------------------------------------------------------- cache unit

TEST(ArtifactCache, TreeRoundTripAndKindSeparation) {
  ArtifactCache cache;
  auto tree = std::make_shared<sssp::SsspResult>();
  tree->dist = {0, 1, 2};
  tree->parent = {kNoVertex, 0, 1};
  cache.put_tree(ArtifactKind::kForwardTree, 7, tree, /*generation=*/0);
  auto hit = cache.get_tree(ArtifactKind::kForwardTree, 7, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->dist, tree->dist);
  // Same vertex, other kind / other key: misses.
  EXPECT_EQ(cache.get_tree(ArtifactKind::kReverseTree, 7, 0), nullptr);
  EXPECT_EQ(cache.get_tree(ArtifactKind::kForwardTree, 8, 0), nullptr);
}

TEST(ArtifactCache, GenerationMismatchDropsEntry) {
  ArtifactCache cache;
  auto tree = std::make_shared<sssp::SsspResult>();
  tree->dist.assign(10, 0);
  tree->parent.assign(10, kNoVertex);
  cache.put_tree(ArtifactKind::kForwardTree, 1, tree, 0);
  EXPECT_EQ(cache.get_tree(ArtifactKind::kForwardTree, 1, /*generation=*/1),
            nullptr);
  // The stale entry was erased, not just skipped.
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCache, ByteBudgetEvictsLeastRecentlyUsed) {
  ArtifactCache::Options o;
  o.shards = 1;  // single LRU list so the eviction order is observable
  auto sized_tree = [] {
    auto t = std::make_shared<sssp::SsspResult>();
    t->dist.assign(1000, 0);
    t->parent.assign(1000, kNoVertex);
    return t;
  };
  const std::size_t per = tree_bytes(*sized_tree());
  o.byte_budget = 3 * per + per / 2;  // room for three
  ArtifactCache cache(o);
  for (vid_t v = 0; v < 4; ++v) {
    cache.put_tree(ArtifactKind::kForwardTree, v, sized_tree(), 0);
    // Touch vertex 0 so it stays hot.
    cache.get_tree(ArtifactKind::kForwardTree, 0, 0);
  }
  EXPECT_NE(cache.get_tree(ArtifactKind::kForwardTree, 0, 0), nullptr);
  EXPECT_NE(cache.get_tree(ArtifactKind::kForwardTree, 3, 0), nullptr);
  // Vertex 1 was the coldest when 3 arrived.
  EXPECT_EQ(cache.get_tree(ArtifactKind::kForwardTree, 1, 0), nullptr);
  EXPECT_LE(cache.stats().bytes_used, o.byte_budget);
}

TEST(ArtifactCache, OversizeArtifactIsRejectedNotCached) {
  ArtifactCache::Options o;
  o.byte_budget = 1024;  // smaller than any real tree
  o.shards = 1;
  ArtifactCache cache(o);
  auto big = std::make_shared<sssp::SsspResult>();
  big->dist.assign(10000, 0);
  big->parent.assign(10000, kNoVertex);
  EXPECT_FALSE(cache.put_tree(ArtifactKind::kForwardTree, 0, big, 0));
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ------------------------------------------------------- serving correctness

TEST(QueryEngine, ColdThenHitMatchesFreshPeek) {
  auto g = test::random_graph(300, 2400, 4242);
  QueryEngine engine(g);
  const auto want = fresh_peek(g, 3, 77, 8);
  auto cold = engine.query(3, 77, 8);
  EXPECT_FALSE(cold.snapshot_hit);
  expect_identical(cold.paths, want);
  auto hot = engine.query(3, 77, 8);
  EXPECT_TRUE(hot.snapshot_hit);
  EXPECT_FALSE(hot.extended);  // pure lookup
  expect_identical(hot.paths, want);
}

TEST(QueryEngine, SmallerKFromLargerRunIsPureLookup) {
  auto g = test::random_graph(300, 2400, 99);
  QueryEngine engine(g);
  engine.query(1, 200, 32);  // warms the snapshot with 32 paths
  auto r = engine.query(1, 200, 8);
  EXPECT_TRUE(r.snapshot_hit);
  EXPECT_FALSE(r.extended);
  expect_identical(r.paths, fresh_peek(g, 1, 200, 8));
}

TEST(QueryEngine, StreamExtensionMatchesFreshPeek) {
  auto g = test::random_graph(300, 2400, 7);
  ServeOptions so;
  so.k_budget_floor = 32;
  QueryEngine engine(g, so);
  engine.query(5, 150, 4);
  auto r = engine.query(5, 150, 16);  // 4 cached, 12 pulled from the stream
  EXPECT_TRUE(r.snapshot_hit);
  EXPECT_TRUE(r.extended);
  expect_identical(r.paths, fresh_peek(g, 5, 150, 16));
}

TEST(QueryEngine, KBeyondBudgetRecomputesCorrectly) {
  auto g = test::random_graph(400, 4000, 11);
  ServeOptions so;
  so.k_budget_floor = 4;  // force k > budget on the second query
  QueryEngine engine(g, so);
  engine.query(2, 300, 4);
  auto r = engine.query(2, 300, 24);  // 24 > budget(4): re-prune, replace
  expect_identical(r.paths, fresh_peek(g, 2, 300, 24));
  // The replacement snapshot serves the wider K from cache now.
  auto again = engine.query(2, 300, 24);
  EXPECT_TRUE(again.snapshot_hit);
  expect_identical(again.paths, r.paths);
}

TEST(QueryEngine, SharedSourceAndTargetReuseTrees) {
  auto g = test::random_graph(400, 4000, 5);
  QueryEngine engine(g);
  engine.query(9, 100, 8);
  auto same_source = engine.query(9, 250, 8);
  EXPECT_TRUE(same_source.fwd_tree_hit);
  expect_identical(same_source.paths, fresh_peek(g, 9, 250, 8));
  auto same_target = engine.query(42, 100, 8);
  EXPECT_TRUE(same_target.rev_tree_hit);
  expect_identical(same_target.paths, fresh_peek(g, 42, 100, 8));
}

TEST(QueryEngine, RandomizedBitIdentityAcrossAllServePaths) {
  // The acceptance property: random graph, random query mix with repeats,
  // shuffled K — every answer equals a fresh peek() on the same (s, t, K).
  std::mt19937_64 rng(20260805);
  for (int round = 0; round < 5; ++round) {
    auto g = test::random_graph(200 + round * 60, 1800 + round * 500,
                                1000 + round);
    ServeOptions so;
    so.k_budget_floor = 8 + 8 * (round % 3);
    QueryEngine engine(g, so);
    std::uniform_int_distribution<vid_t> pick(0, g.num_vertices() - 1);
    std::uniform_int_distribution<int> pick_k(1, 24);
    std::vector<std::pair<vid_t, vid_t>> pool;
    for (int q = 0; q < 30; ++q) {
      std::pair<vid_t, vid_t> key;
      if (!pool.empty() && q % 2 == 1) {  // 50% key reuse
        key = pool[rng() % pool.size()];
      } else {
        key = {pick(rng), pick(rng)};
        pool.push_back(key);
      }
      const int k = pick_k(rng);
      auto r = engine.query(key.first, key.second, k);
      auto want = fresh_peek(g, key.first, key.second, k);
      expect_identical(r.paths, want);
      test::check_ksp_invariants(g, key.first, key.second, r.paths);
    }
  }
}

TEST(QueryEngine, ConcurrentDuplicateQueriesCoalesce) {
  auto g = test::random_graph(500, 5000, 31337);
  QueryEngine engine(g);
  const auto want = fresh_peek(g, 1, 400, 12);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<ServeResult> results(kThreads);
  std::atomic<int> ready{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      results[static_cast<size_t>(i)] = engine.query(1, 400, 12);
    });
  }
  for (auto& th : threads) th.join();
  int coalesced_or_hit = 0;
  for (const auto& r : results) {
    expect_identical(r.paths, want);
    if (r.coalesced || r.snapshot_hit) coalesced_or_hit++;
  }
  // At most one thread can have done the full computation.
  EXPECT_GE(coalesced_or_hit, kThreads - 1);
}

TEST(QueryEngine, ConcurrentMixedQueriesAreCorrect) {
  auto g = test::random_graph(400, 3600, 555);
  QueryEngine engine(g);
  const std::vector<std::tuple<vid_t, vid_t, int>> queries = {
      {0, 100, 8}, {0, 200, 8}, {7, 100, 16}, {0, 100, 24}, {7, 200, 4}};
  std::vector<std::vector<sssp::Path>> want;
  want.reserve(queries.size());
  for (const auto& [s, t, k] : queries) want.push_back(fresh_peek(g, s, t, k));
  std::vector<std::thread> threads;
  for (int rep = 0; rep < 3; ++rep) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      threads.emplace_back([&, qi] {
        const auto& [s, t, k] = queries[qi];
        auto r = engine.query(s, t, k);
        expect_identical(r.paths, want[qi]);
      });
    }
  }
  for (auto& th : threads) th.join();
}

TEST(QueryEngine, UnreachableTargetIsCachedNegative) {
  // 0 -> 1 -> 2, vertex 3 isolated.
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}});
  QueryEngine engine(g);
  auto r1 = engine.query(0, 3, 8);
  EXPECT_TRUE(r1.paths.empty());
  auto r2 = engine.query(0, 3, 8);
  EXPECT_TRUE(r2.paths.empty());
  EXPECT_TRUE(r2.snapshot_hit);  // the negative answer was cached
}

TEST(QueryEngine, ExhaustedPathSpaceServesAllPaths) {
  // Exactly two s->t paths; asking for more must return exactly those two.
  auto g = graph::from_edges(
      4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0}, {2, 3, 1.0}});
  QueryEngine engine(g);
  auto r = engine.query(0, 3, 10);
  ASSERT_EQ(r.paths.size(), 2u);
  auto again = engine.query(0, 3, 50);  // beyond budget but exhausted
  EXPECT_TRUE(again.snapshot_hit);
  ASSERT_EQ(again.paths.size(), 2u);
  expect_identical(again.paths, fresh_peek(g, 0, 3, 10));
}

TEST(QueryEngine, ZeroBudgetFallsBackToUncachedPeek) {
  auto g = test::random_graph(200, 1600, 2);
  ServeOptions so;
  so.cache.byte_budget = 0;  // memory-pressure degradation mode
  QueryEngine engine(g, so);
  auto r1 = engine.query(0, 50, 8);
  EXPECT_TRUE(r1.uncached);
  EXPECT_FALSE(r1.snapshot_hit);
  expect_identical(r1.paths, fresh_peek(g, 0, 50, 8));
  auto r2 = engine.query(0, 50, 8);  // still correct, still uncached
  EXPECT_TRUE(r2.uncached);
  expect_identical(r2.paths, r1.paths);
}

TEST(QueryEngine, DynamicGraphEditInvalidatesCache) {
  auto g = test::random_graph(150, 1200, 17);
  dyn::DynamicGraph dg(g);
  QueryEngine engine(dg);
  auto before = engine.query(0, 90, 6);
  expect_identical(before.paths, fresh_peek(g, 0, 90, 6));
  const auto gen_before = engine.generation();

  // Mutate: delete the first edge of the current best path (if any), else
  // insert a shortcut — either way the structure version changes.
  if (!before.paths.empty() && before.paths[0].verts.size() >= 2) {
    dg.delete_edge(before.paths[0].verts[0], before.paths[0].verts[1]);
  } else {
    dg.insert_edge(0, 90, 0.001);
  }
  auto after = engine.query(0, 90, 6);
  EXPECT_GT(engine.generation(), gen_before);
  EXPECT_FALSE(after.snapshot_hit);  // stale snapshot was not served
  expect_identical(after.paths, fresh_peek(dg.to_csr(), 0, 90, 6));

  // And the new answer is itself cached under the new generation.
  auto warm = engine.query(0, 90, 6);
  EXPECT_TRUE(warm.snapshot_hit);
  expect_identical(warm.paths, after.paths);
}

TEST(QueryEngine, ManualInvalidateForcesRecompute) {
  auto g = test::random_graph(150, 1200, 23);
  QueryEngine engine(g);
  engine.query(2, 60, 8);
  engine.invalidate();
  auto r = engine.query(2, 60, 8);
  EXPECT_FALSE(r.snapshot_hit);
  expect_identical(r.paths, fresh_peek(g, 2, 60, 8));
}

TEST(QueryEngine, InvalidQueriesReturnEmpty) {
  auto g = test::random_graph(50, 300, 3);
  QueryEngine engine(g);
  EXPECT_TRUE(engine.query(-1, 10, 8).paths.empty());
  EXPECT_TRUE(engine.query(0, 500, 8).paths.empty());
  EXPECT_TRUE(engine.query(0, 10, 0).paths.empty());
}

// -------------------------------------------------------- cached-only probe

TEST(QueryEngine, CachedOnlyEmptyCacheIsOverloadedNotAnAnswer) {
  auto g = test::random_graph(120, 900, 31);
  QueryEngine engine(g);
  // Nothing has been computed: the zero-graph-work probe must refuse, not
  // fall through to a real computation.
  auto r = engine.query_cached_only(0, 60, 6);
  EXPECT_EQ(r.status.code, fault::Status::kOverloaded);
  EXPECT_TRUE(r.paths.empty());
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(r.snapshot_hit);
}

TEST(QueryEngine, CachedOnlyServesWarmSnapshot) {
  auto g = test::random_graph(120, 900, 31);
  QueryEngine engine(g);
  auto warm = engine.query(0, 60, 6);
  ASSERT_EQ(warm.status.code, fault::Status::kOk);

  auto r = engine.query_cached_only(0, 60, 6);
  EXPECT_EQ(r.status.code, fault::Status::kOk);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.snapshot_hit);
  expect_identical(r.paths, warm.paths);

  // A smaller k is a prefix of the cached paths, never a recompute.
  auto r3 = engine.query_cached_only(0, 60, 3);
  EXPECT_EQ(r3.status.code, fault::Status::kOk);
  ASSERT_LE(r3.paths.size(), size_t{3});
  for (size_t i = 0; i < r3.paths.size(); ++i) {
    EXPECT_EQ(r3.paths[i].verts, warm.paths[i].verts);
  }
}

TEST(QueryEngine, CachedOnlyRefusesStaleGeneration) {
  auto g = test::random_graph(120, 900, 37);
  QueryEngine engine(g);
  auto warm = engine.query(2, 70, 5);
  ASSERT_EQ(warm.status.code, fault::Status::kOk);
  EXPECT_EQ(engine.query_cached_only(2, 70, 5).status.code,
            fault::Status::kOk);

  // invalidate() bumps the generation; the old snapshot must not be served
  // even though it is still resident in the cache.
  engine.invalidate();
  auto stale = engine.query_cached_only(2, 70, 5);
  EXPECT_EQ(stale.status.code, fault::Status::kOverloaded);
  EXPECT_TRUE(stale.paths.empty());
  EXPECT_FALSE(stale.degraded);
}

TEST(QueryEngine, CachedOnlyRejectsInvalidArguments) {
  auto g = test::random_graph(60, 400, 5);
  QueryEngine engine(g);
  EXPECT_EQ(engine.query_cached_only(-1, 10, 4).status.code,
            fault::Status::kInvalidArgument);
  EXPECT_EQ(engine.query_cached_only(0, 600, 4).status.code,
            fault::Status::kInvalidArgument);
  EXPECT_EQ(engine.query_cached_only(0, 10, 0).status.code,
            fault::Status::kInvalidArgument);
}

TEST(QueryEngine, CachedOnlyHonorsDegradedServingOptOut) {
  auto g = test::random_graph(120, 900, 41);
  ServeOptions opts;
  opts.degraded_serving = false;
  QueryEngine engine(g, opts);
  engine.query(0, 60, 6);
  // Disabled degraded serving means the probe refuses even on a warm cache.
  EXPECT_EQ(engine.query_cached_only(0, 60, 6).status.code,
            fault::Status::kOverloaded);
}

}  // namespace
}  // namespace peek::serve
