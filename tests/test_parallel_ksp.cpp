// Thread-count sweeps: every parallel code path must return the same answer
// at every thread count (the §7.5 scalability experiment's correctness
// premise).
#include <gtest/gtest.h>

#include "core/peek.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/optyen.hpp"
#include "ksp/yen.hpp"
#include "parallel/parallel_for.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, PeekStableAcrossThreadCounts) {
  par::ThreadScope scope(GetParam());
  auto g = test::random_graph(200, 1600, 901);
  core::PeekOptions opts;
  opts.k = 8;
  opts.parallel = true;
  auto r = core::peek_ksp(g, 0, 100, opts);
  // Reference computed serially at any thread count.
  core::PeekOptions ser;
  ser.k = 8;
  auto ref = core::peek_ksp(g, 0, 100, ser);
  test::expect_same_distances(ref.ksp.paths, r.ksp.paths);
}

TEST_P(ThreadSweep, OptYenStableAcrossThreadCounts) {
  par::ThreadScope scope(GetParam());
  auto g = test::random_graph(150, 1200, 903);
  ksp::KspOptions opts;
  opts.k = 6;
  opts.parallel = true;
  auto r = ksp::optyen_ksp(g, 0, 75, opts);
  ksp::KspOptions ser;
  ser.k = 6;
  auto ref = ksp::optyen_ksp(g, 0, 75, ser);
  test::expect_same_distances(ref.paths, r.paths);
}

TEST_P(ThreadSweep, YenStableAcrossThreadCounts) {
  par::ThreadScope scope(GetParam());
  auto g = test::random_graph(120, 960, 905);
  ksp::KspOptions opts;
  opts.k = 6;
  opts.parallel = true;
  auto r = ksp::yen_ksp(g, 0, 60, opts);
  ksp::KspOptions ser;
  ser.k = 6;
  test::expect_same_distances(ksp::yen_ksp(g, 0, 60, ser).paths, r.paths);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 4, 8));

TEST(ThreadScope, RestoresThreadCount) {
  const int before = par::max_threads();
  {
    par::ThreadScope scope(2);
    EXPECT_EQ(par::max_threads(), 2);
  }
  EXPECT_EQ(par::max_threads(), before);
}

}  // namespace
}  // namespace peek
