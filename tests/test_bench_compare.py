#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (the CI perf gate).

Covers the contract the perf job relies on: a regression beyond tolerance
fails, an improvement (or slowdown inside tolerance) passes, a metric
dropped from the candidate fails, a schema mismatch is rejected before any
numbers are compared, and a sanitized candidate skips with exit 0.

Run directly (python3 tests/test_bench_compare.py) or via ctest.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO, "tools", "bench_compare.py")


def make_doc(**overrides):
    doc = {
        "schema": "peek-bench-v1",
        "schema_version": 1,
        "pr": 6,
        "build": {
            "compiler": "test",
            "build_type": "Release",
            "openmp": True,
            "sanitized": False,
        },
        "machine": {"host": "unit", "hardware_threads": 1},
        "config": {"reps": 3, "seed": 42},
        "graphs": [
            {
                "name": "R21",
                "vertices": 4096,
                "edges": 32768,
                "fingerprint": "00000000deadbeef",
            }
        ],
        "metrics": {
            "sssp.dijkstra.R21": {"median_s": 0.010, "min_s": 0.009, "reps": 3},
            "ksp.arena.R21": {"median_s": 0.020, "min_s": 0.019, "reps": 3},
        },
    }
    doc.update(overrides)
    return doc


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, base, cand, *extra):
        env = dict(os.environ)
        env.pop("PEEK_BENCH_TOLERANCE", None)  # tests pin --tolerance
        return subprocess.run(
            [sys.executable, SCRIPT, base, cand, *extra],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_regression_detected(self):
        base = make_doc()
        cand = copy.deepcopy(base)
        cand["metrics"]["sssp.dijkstra.R21"]["median_s"] = 0.015  # +50%
        r = self.run_compare(
            self.write("b.json", base),
            self.write("c.json", cand),
            "--tolerance",
            "0.25",
        )
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSION", r.stdout)
        self.assertIn("sssp.dijkstra.R21", r.stderr)

    def test_improvement_passes(self):
        base = make_doc()
        cand = copy.deepcopy(base)
        cand["metrics"]["sssp.dijkstra.R21"]["median_s"] = 0.005  # -50%
        cand["metrics"]["ksp.arena.R21"]["median_s"] = 0.022  # +10% < 25%
        r = self.run_compare(
            self.write("b.json", base),
            self.write("c.json", cand),
            "--tolerance",
            "0.25",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("OK", r.stdout)

    def test_missing_metric_fails(self):
        base = make_doc()
        cand = copy.deepcopy(base)
        del cand["metrics"]["ksp.arena.R21"]
        r = self.run_compare(
            self.write("b.json", base),
            self.write("c.json", cand),
            "--tolerance",
            "0.25",
        )
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("missing from the candidate", r.stderr)

    def test_new_metric_passes(self):
        base = make_doc()
        cand = copy.deepcopy(base)
        cand["metrics"]["peek.e2e.R21"] = {
            "median_s": 0.5,
            "min_s": 0.4,
            "reps": 3,
        }
        r = self.run_compare(
            self.write("b.json", base),
            self.write("c.json", cand),
            "--tolerance",
            "0.25",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("new", r.stdout)

    def test_p99_regression_detected(self):
        base = make_doc()
        base["metrics"]["shard.storm.hedged.R21"] = {
            "median_s": 0.00001,
            "min_s": 0.000005,
            "reps": 160,
            "p50_s": 0.00001,
            "p99_s": 0.004,
        }
        cand = copy.deepcopy(base)
        # Median unchanged; only the tail blows up (a hedging regression).
        cand["metrics"]["shard.storm.hedged.R21"]["p99_s"] = 0.020
        r = self.run_compare(
            self.write("b.json", base),
            self.write("c.json", cand),
            "--tolerance",
            "0.25",
        )
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSION(p99)", r.stdout)
        self.assertIn("shard.storm.hedged.R21[p99]", r.stderr)

    def test_p99_within_tolerance_passes(self):
        base = make_doc()
        base["metrics"]["shard.storm.hedged.R21"] = {
            "median_s": 0.00001,
            "min_s": 0.000005,
            "reps": 160,
            "p50_s": 0.00001,
            "p99_s": 0.004,
        }
        cand = copy.deepcopy(base)
        cand["metrics"]["shard.storm.hedged.R21"]["p99_s"] = 0.0045  # +12.5%
        r = self.run_compare(
            self.write("b.json", base),
            self.write("c.json", cand),
            "--tolerance",
            "0.25",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("OK", r.stdout)

    def test_schema_mismatch_rejected(self):
        base = make_doc()
        cand = make_doc(schema="some-other-schema")
        r = self.run_compare(
            self.write("b.json", base), self.write("c.json", cand)
        )
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("schema", r.stderr)

    def test_schema_version_mismatch_fails(self):
        base = make_doc()
        cand = make_doc(schema_version=2)
        r = self.run_compare(
            self.write("b.json", base), self.write("c.json", cand)
        )
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("schema_version mismatch", r.stderr)

    def test_fingerprint_mismatch_fails_without_override(self):
        base = make_doc()
        cand = copy.deepcopy(base)
        cand["graphs"][0]["fingerprint"] = "00000000cafef00d"
        bp, cp = self.write("b.json", base), self.write("c.json", cand)
        r = self.run_compare(bp, cp)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("fingerprint changed", r.stderr)
        r = self.run_compare(bp, cp, "--allow-graph-mismatch")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_sanitized_candidate_skips(self):
        base = make_doc()
        cand = make_doc()
        cand["build"]["sanitized"] = True
        # Even with a 10x regression, a sanitized candidate is never gated.
        cand["metrics"]["sssp.dijkstra.R21"]["median_s"] = 0.1
        r = self.run_compare(
            self.write("b.json", base), self.write("c.json", cand)
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("SKIPPED", r.stdout)

    def test_malformed_json_exits_2(self):
        path = os.path.join(self.tmp.name, "bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        r = self.run_compare(path, self.write("c.json", make_doc()))
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main()
