#include "sssp/dijkstra.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_util.hpp"

namespace peek::sssp {
namespace {

using graph::from_edges;

TEST(Dijkstra, LineGraph) {
  auto g = from_edges(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}});
  auto r = dijkstra(GraphView(g), 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[3], 6.0);
  EXPECT_EQ(r.parent[3], 2);
  EXPECT_EQ(r.parent[0], kNoVertex);
}

TEST(Dijkstra, PicksShorterOfTwoRoutes) {
  // 0 -> 1 -> 2 costs 2; direct 0 -> 2 costs 3.
  auto g = from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 3.0}});
  auto r = dijkstra(GraphView(g), 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
  EXPECT_EQ(r.parent[2], 1);
}

TEST(Dijkstra, UnreachableIsInf) {
  auto g = from_edges(3, {{0, 1, 1.0}});
  auto r = dijkstra(GraphView(g), 0);
  EXPECT_EQ(r.dist[2], kInfDist);
  EXPECT_EQ(r.parent[2], kNoVertex);
}

TEST(Dijkstra, EarlyExitSettlesTarget) {
  auto g = graph::grid(20, 20, {graph::WeightKind::kUniform01, 3});
  DijkstraOptions opts;
  opts.target = 399;
  auto early = dijkstra(GraphView(g), 0, opts);
  auto full = dijkstra(GraphView(g), 0);
  EXPECT_DOUBLE_EQ(early.dist[399], full.dist[399]);
}

TEST(Dijkstra, VertexBanReroutes) {
  // 0 -> 1 -> 3 (cost 2) vs 0 -> 2 -> 3 (cost 4); ban 1.
  auto g = from_edges(4, {{0, 1, 1.0}, {1, 3, 1.0}, {0, 2, 2.0}, {2, 3, 2.0}});
  std::vector<std::uint8_t> banned(4, 0);
  banned[1] = 1;
  DijkstraOptions opts;
  opts.bans.vertices = banned.data();
  auto r = dijkstra(GraphView(g), 0, opts);
  EXPECT_DOUBLE_EQ(r.dist[3], 4.0);
  EXPECT_EQ(r.dist[1], kInfDist);
}

TEST(Dijkstra, EdgeBanReroutes) {
  auto g = from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}});
  std::unordered_set<eid_t> banned{g.find_edge(1, 2)};
  DijkstraOptions opts;
  opts.bans.edges = &banned;
  auto r = dijkstra(GraphView(g), 0, opts);
  EXPECT_DOUBLE_EQ(r.dist[2], 5.0);
}

TEST(Dijkstra, BannedSourceYieldsNothing) {
  auto g = from_edges(2, {{0, 1, 1.0}});
  std::vector<std::uint8_t> banned{1, 0};
  DijkstraOptions opts;
  opts.bans.vertices = banned.data();
  auto r = dijkstra(GraphView(g), 0, opts);
  EXPECT_EQ(r.dist[0], kInfDist);
}

TEST(Dijkstra, InvalidSourceIsSafe) {
  auto g = from_edges(2, {{0, 1, 1.0}});
  auto r = dijkstra(GraphView(g), -1);
  EXPECT_EQ(r.dist[0], kInfDist);
  r = dijkstra(GraphView(g), 5);
  EXPECT_EQ(r.dist[0], kInfDist);
}

TEST(ReverseDijkstra, DistancesToTarget) {
  auto g = from_edges(3, {{0, 1, 1.5}, {1, 2, 2.5}});
  auto r = reverse_dijkstra(g, 2);
  EXPECT_DOUBLE_EQ(r.dist[0], 4.0);
  EXPECT_DOUBLE_EQ(r.dist[1], 2.5);
  // parent[v] = successor toward t.
  EXPECT_EQ(r.parent[0], 1);
  EXPECT_EQ(r.parent[1], 2);
}

TEST(ReverseDijkstra, PaperExampleSpTgt) {
  auto ex = test::paper_example_graph();
  auto r = reverse_dijkstra(ex.g, ex.t);
  // Distances to t read off Figure 3(c)'s role (with our weights):
  EXPECT_DOUBLE_EQ(r.dist[ex.id.at("s")], 11.0);
  EXPECT_DOUBLE_EQ(r.dist[ex.id.at("j")], 2.0);
  EXPECT_DOUBLE_EQ(r.dist[ex.id.at("l")], 4.0);
  EXPECT_DOUBLE_EQ(r.dist[ex.id.at("q")], 3.0);
  EXPECT_EQ(r.dist[ex.id.at("b")], kInfDist);  // b has no out-edges
  EXPECT_EQ(r.dist[ex.id.at("p")], kInfDist);
}

TEST(ShortestDistance, Convenience) {
  auto g = from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  EXPECT_DOUBLE_EQ(shortest_distance(g, 0, 2), 2.0);
  EXPECT_EQ(shortest_distance(g, 2, 0), kInfDist);
}

TEST(Dijkstra, ParentsFormShortestPathTree) {
  auto g = test::random_graph(200, 1500, 21);
  auto r = dijkstra(GraphView(g), 0);
  for (vid_t v = 0; v < 200; ++v) {
    if (r.dist[v] == kInfDist || v == 0) continue;
    const vid_t p = r.parent[v];
    ASSERT_NE(p, kNoVertex);
    const eid_t e = g.find_edge(p, v);
    ASSERT_NE(e, kNoEdge);
    EXPECT_NEAR(r.dist[p] + g.edge_weight(e), r.dist[v], 1e-12);
  }
}

}  // namespace
}  // namespace peek::sssp
