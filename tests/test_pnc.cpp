#include "ksp/pnc.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "ksp/yen.hpp"
#include "test_util.hpp"

namespace peek::ksp {
namespace {

KspOptions k_opts(int k) {
  KspOptions o;
  o.k = k;
  return o;
}

TEST(Pnc, PaperExampleTopThree) {
  auto ex = test::paper_example_graph();
  auto r = pnc_ksp(ex.g, ex.s, ex.t, k_opts(3));
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 11.0);
  EXPECT_DOUBLE_EQ(r.paths[1].dist, 12.0);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
  test::check_ksp_invariants(ex.g, ex.s, ex.t, r.paths);
}

TEST(Pnc, StarPaperExample) {
  auto ex = test::paper_example_graph();
  auto r = pnc_star_ksp(ex.g, ex.s, ex.t, k_opts(3));
  ASSERT_EQ(r.paths.size(), 3u);
  EXPECT_DOUBLE_EQ(r.paths[2].dist, 14.0);
}

class PncSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PncSweep, MatchesOracleAndYen) {
  auto g = test::random_graph(32, 96, GetParam());
  auto oracle = bruteforce_ksp(g, 0, 16, 10);
  auto pnc = pnc_ksp(g, 0, 16, k_opts(10));
  auto star = pnc_star_ksp(g, 0, 16, k_opts(10));
  test::expect_same_distances(oracle.paths, pnc.paths);
  test::expect_same_distances(oracle.paths, star.paths);
  test::check_ksp_invariants(g, 0, 16, pnc.paths);
  test::check_ksp_invariants(g, 0, 16, star.paths);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PncSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Pnc, PostponesRepairs) {
  // PNC's premise: fewer SSSPs than deviations examined, because only
  // extracted tentative candidates get repaired.
  auto g = test::random_graph(150, 1200, 881);
  auto yen = yen_ksp(g, 0, 75, k_opts(12));
  auto pnc = pnc_ksp(g, 0, 75, k_opts(12));
  if (yen.paths.empty()) GTEST_SKIP() << "unreachable pair";
  test::expect_same_distances(yen.paths, pnc.paths);
  EXPECT_LT(pnc.stats.sssp_calls, yen.stats.sssp_calls);
}

TEST(Pnc, StarReducesRepairsFurther) {
  auto g = test::random_graph(150, 1200, 883);
  auto pnc = pnc_ksp(g, 0, 75, k_opts(16));
  auto star = pnc_star_ksp(g, 0, 75, k_opts(16));
  if (pnc.paths.empty()) GTEST_SKIP() << "unreachable pair";
  test::expect_same_distances(pnc.paths, star.paths);
  EXPECT_LE(star.stats.sssp_calls, pnc.stats.sssp_calls);
}

TEST(Pnc, UnreachableAndInvalid) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  EXPECT_TRUE(pnc_ksp(g, 0, 2, k_opts(4)).paths.empty());
  EXPECT_TRUE(pnc_star_ksp(g, 0, 2, k_opts(0)).paths.empty());
}

TEST(Pnc, ExhaustsSmallPathSpace) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  EXPECT_EQ(pnc_ksp(g, 0, 3, k_opts(10)).paths.size(), 2u);
  EXPECT_EQ(pnc_star_ksp(g, 0, 3, k_opts(10)).paths.size(), 2u);
}

TEST(Pnc, DenseDagMatchesOracle) {
  auto g = graph::layered_dag(4, 4, 3, {graph::WeightKind::kUniform01, 21}, 23);
  auto oracle = bruteforce_ksp(g, 0, 13, 12);
  test::expect_same_distances(pnc_ksp(g, 0, 13, k_opts(12)).paths,
                              oracle.paths);
  test::expect_same_distances(pnc_star_ksp(g, 0, 13, k_opts(12)).paths,
                              oracle.paths);
}

}  // namespace
}  // namespace peek::ksp
