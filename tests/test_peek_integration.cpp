// End-to-end integration: PeeK on each benchmark-family graph at realistic
// (scaled-down) sizes, checking correctness against OptYen and the pruning /
// K-insensitivity behaviours the paper reports.
#include <gtest/gtest.h>

#include <chrono>

#include "core/peek.hpp"
#include "graph/generators.hpp"
#include "ksp/optyen.hpp"
#include "test_util.hpp"

namespace peek::core {
namespace {

struct Workload {
  const char* name;
  graph::CsrGraph g;
  vid_t s, t;
};

Workload make_workload(const std::string& kind) {
  graph::WeightOptions w;
  w.kind = kind.ends_with("U") ? graph::WeightKind::kUnit
                               : graph::WeightKind::kUniform01;
  w.seed = 99;
  if (kind.starts_with("rmat"))
    return {"rmat", graph::rmat(12, 8, w, 5), 1, 100};
  if (kind.starts_with("pa"))
    return {"pa", graph::preferential_attachment(4000, 4, w, 6), 1, 2000};
  return {"sw", graph::small_world(4000, 8, 0.1, w, 7), 1, 2000};
}

class Families : public ::testing::TestWithParam<const char*> {};

TEST_P(Families, PeekMatchesOptYen) {
  auto wl = make_workload(GetParam());
  ksp::KspOptions ko;
  ko.k = 8;
  auto base = ksp::optyen_ksp(wl.g, wl.s, wl.t, ko);
  PeekOptions po;
  po.k = 8;
  auto mine = peek_ksp(wl.g, wl.s, wl.t, po);
  test::expect_same_distances(base.paths, mine.ksp.paths);
  if (!mine.ksp.paths.empty())
    test::check_ksp_invariants(wl.g, wl.s, wl.t, mine.ksp.paths);
}

TEST_P(Families, PruningKeepsTinyFraction) {
  auto wl = make_workload(GetParam());
  PeekOptions po;
  po.k = 8;
  auto r = peek_ksp(wl.g, wl.s, wl.t, po);
  if (r.ksp.paths.empty()) GTEST_SKIP() << "unreachable pair";
  // §4.2: ~98% pruned in the paper; assert a conservative 50% here.
  EXPECT_LT(r.kept_vertices, wl.g.num_vertices() / 2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Graphs, Families,
                         ::testing::Values("rmat", "rmatU", "pa", "paU", "sw",
                                           "swU"));

TEST(KInsensitivity, PrunedSizeGrowsSlowlyWithK) {
  // The paper's headline behaviour (§7.6): K growing 64x barely changes the
  // PeeK runtime because the pruned graph barely grows. We assert the
  // structural part: kept vertices grow sublinearly in K.
  auto g = graph::rmat(12, 8, {}, 15);
  PeekOptions po;
  po.k = 2;
  auto small = peek_ksp(g, 1, 100, po);
  if (small.ksp.paths.empty()) GTEST_SKIP() << "unreachable pair";
  po.k = 128;
  auto large = peek_ksp(g, 1, 100, po);
  EXPECT_LT(large.kept_vertices, small.kept_vertices * 64)
      << "kept set must grow far slower than K";
}

TEST(EndToEnd, LargeKExhaustsCandidates) {
  // K far beyond the path count: PeeK terminates with what exists.
  auto g = graph::grid(4, 4, {graph::WeightKind::kUniform01, 3});
  PeekOptions po;
  po.k = 10000;
  auto r = peek_ksp(g, 0, 15, po);
  EXPECT_GT(r.ksp.paths.size(), 0u);
  EXPECT_LT(r.ksp.paths.size(), 10000u);
  test::check_ksp_invariants(g, 0, 15, r.ksp.paths);
}

}  // namespace
}  // namespace peek::core
