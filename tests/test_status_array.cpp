#include "compact/status_array.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek::compact {
namespace {

TEST(StatusArray, MarksVerticesDead) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}});
  StatusArrayGraph sa(g);
  std::vector<std::uint8_t> keep{1, 0, 1};
  const eid_t remaining = sa.apply(keep.data());
  EXPECT_EQ(remaining, 1);  // only 0 -> 2
  EXPECT_FALSE(sa.view().vertex_alive(1));
  EXPECT_TRUE(sa.view().vertex_alive(0));
}

TEST(StatusArray, EdgePredicateFilters) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}});
  StatusArrayGraph sa(g);
  std::vector<std::uint8_t> keep{1, 1, 1};
  const eid_t remaining = sa.apply(
      keep.data(), [](vid_t, vid_t, weight_t w) { return w <= 2.0; });
  EXPECT_EQ(remaining, 2);
  EXPECT_FALSE(sa.view().edge_alive(g.find_edge(0, 2)));
}

TEST(StatusArray, ReverseViewConsistent) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  StatusArrayGraph sa(g);
  std::vector<std::uint8_t> keep{1, 0, 1};
  sa.apply(keep.data());
  // Reverse traversal from 2 must not see the dead path through 1.
  auto r = sssp::dijkstra(sa.reverse_view(), 2);
  EXPECT_EQ(r.dist[0], kInfDist);
  EXPECT_EQ(r.dist[1], kInfDist);
}

TEST(StatusArray, CumulativeApplications) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0},
                                 {0, 3, 9.0}});
  StatusArrayGraph sa(g);
  std::vector<std::uint8_t> keep1{1, 0, 1, 1};
  sa.apply(keep1.data());
  std::vector<std::uint8_t> keep2{1, 1, 0, 1};  // 1 stays dead from round 1
  const eid_t remaining = sa.apply(keep2.data());
  EXPECT_EQ(remaining, 1);  // only 0 -> 3
  EXPECT_FALSE(sa.view().vertex_alive(1));
  EXPECT_FALSE(sa.view().vertex_alive(2));
}

TEST(StatusArray, SsspOnViewMatchesFilteredGraph) {
  auto g = test::random_graph(80, 640, 51);
  StatusArrayGraph sa(g);
  std::vector<std::uint8_t> keep(80, 1);
  for (vid_t v = 40; v < 80; ++v) keep[v] = (v % 3 != 0);
  sa.apply(keep.data(), [](vid_t, vid_t, weight_t w) { return w <= 0.8; });

  // Reference: rebuild the filtered graph explicitly.
  graph::Builder b(80);
  for (vid_t u = 0; u < 80; ++u) {
    if (!keep[u]) continue;
    for (eid_t e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      const vid_t v = g.edge_target(e);
      if (keep[v] && g.edge_weight(e) <= 0.8)
        b.add_edge(u, v, g.edge_weight(e));
    }
  }
  auto ref_g = b.build();
  auto ref = sssp::dijkstra(sssp::GraphView(ref_g), 0);
  auto got = sssp::dijkstra(sa.view(), 0);
  for (vid_t v = 0; v < 80; ++v) {
    if (ref.dist[v] == kInfDist) EXPECT_EQ(got.dist[v], kInfDist) << v;
    else EXPECT_NEAR(got.dist[v], ref.dist[v], 1e-9) << v;
  }
}

TEST(StatusArray, SerialAndParallelAgree) {
  auto g = test::random_graph(100, 800, 53);
  std::vector<std::uint8_t> keep(100, 1);
  for (vid_t v = 0; v < 100; v += 4) keep[v] = 0;
  StatusArrayGraph a(g), b(g);
  const eid_t ra = a.apply(keep.data(), nullptr, /*parallel=*/false);
  const eid_t rb = b.apply(keep.data(), nullptr, /*parallel=*/true);
  EXPECT_EQ(ra, rb);
}

}  // namespace
}  // namespace peek::compact
