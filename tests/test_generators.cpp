#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/stats.hpp"

namespace peek::graph {
namespace {

TEST(Generators, RmatSizes) {
  auto g = rmat(10, 8);
  EXPECT_EQ(g.num_vertices(), 1024);
  // Dedup may remove some of the n * edge_factor generated edges.
  EXPECT_GT(g.num_edges(), 1024 * 4);
  EXPECT_LE(g.num_edges(), 1024 * 8);
}

TEST(Generators, RmatDeterministic) {
  EXPECT_TRUE(rmat(8, 8, {}, 5) == rmat(8, 8, {}, 5));
  EXPECT_FALSE(rmat(8, 8, {}, 5) == rmat(8, 8, {}, 6));
}

TEST(Generators, RmatIsSkewed) {
  // R-MAT's defining property: a heavy-tailed degree distribution.
  auto g = rmat(12, 16);
  auto s = compute_stats(g);
  EXPECT_GT(s.max_out_degree, 8 * static_cast<eid_t>(s.avg_out_degree));
}

TEST(Generators, ErdosRenyiSizes) {
  auto g = erdos_renyi(500, 3000);
  EXPECT_EQ(g.num_vertices(), 500);
  EXPECT_LE(g.num_edges(), 3000);
  EXPECT_GT(g.num_edges(), 2500);  // few duplicates at this density
}

TEST(Generators, SmallWorldDegree) {
  auto g = small_world(400, 6, 0.1);
  EXPECT_EQ(g.num_vertices(), 400);
  // Each vertex emits exactly 6 edges before dedup.
  EXPECT_LE(g.num_edges(), 2400);
  EXPECT_GT(g.num_edges(), 2200);
}

TEST(Generators, PreferentialAttachmentHubs) {
  auto g = preferential_attachment(1000, 3);
  auto s = compute_stats(g);
  EXPECT_GT(s.max_out_degree, 20);  // hubs emerge
  EXPECT_EQ(s.isolated_vertices, 0);
}

TEST(Generators, GridStructure) {
  auto g = grid(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  // Interior vertex (1,1) = id 6 has 4 out-neighbours.
  EXPECT_EQ(g.degree(6), 4);
  // Corner has 2.
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Generators, PathStructure) {
  auto g = path(5, {WeightKind::kUnit, 1});
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(4), 0);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Generators, LayeredDagIsAcyclicByLayers) {
  auto g = layered_dag(5, 10, 3);
  EXPECT_EQ(g.num_vertices(), 50);
  // Every edge goes to the next layer: target layer == source layer + 1.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.neighbors(u)) {
      EXPECT_EQ(v / 10, u / 10 + 1);
    }
  }
}

TEST(Generators, CompleteGraph) {
  auto g = complete(6);
  EXPECT_EQ(g.num_edges(), 30);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(Generators, UnitWeights) {
  auto g = erdos_renyi(100, 500, {WeightKind::kUnit, 1});
  for (weight_t w : g.weights()) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(Generators, Uniform01WeightsInRange) {
  auto g = erdos_renyi(100, 500, {WeightKind::kUniform01, 3});
  for (weight_t w : g.weights()) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(Generators, PowerLawWeightsInRange) {
  auto g = erdos_renyi(100, 500, {WeightKind::kPowerLaw, 3});
  for (weight_t w : g.weights()) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(Generators, RmatRejectsBadScale) {
  EXPECT_THROW(rmat(0, 8), std::invalid_argument);
  EXPECT_THROW(rmat(31, 8), std::invalid_argument);
}

}  // namespace
}  // namespace peek::graph
