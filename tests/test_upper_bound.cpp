#include "core/upper_bound.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "test_util.hpp"

namespace peek::core {
namespace {

TEST(UpperBound, PaperExampleBoundAndKeepSet) {
  // Figure 3: K = 3 gives b = 14 and keeps exactly {s, g, l, f, j, q, t}.
  auto ex = test::paper_example_graph();
  PruneOptions opts;
  opts.k = 3;
  auto r = k_upper_bound_prune(ex.g, ex.s, ex.t, opts);
  EXPECT_DOUBLE_EQ(r.upper_bound, 14.0);
  EXPECT_EQ(r.kept_vertices, 7);
  for (const char* name : {"s", "g", "l", "f", "j", "q", "t"})
    EXPECT_TRUE(r.vertex_keep[ex.id.at(name)]) << name;
  for (const char* name : {"a", "b", "c", "d", "e", "i", "o", "p", "r"})
    EXPECT_FALSE(r.vertex_keep[ex.id.at(name)]) << name;
}

TEST(UpperBound, BoundIsSound) {
  // b must be >= the true K-th shortest path distance (Lemma 4.2's premise).
  for (std::uint64_t seed : {201u, 202u, 203u, 204u}) {
    auto g = test::random_graph(32, 96, seed);
    auto oracle = ksp::bruteforce_ksp(g, 0, 16, 8);
    if (oracle.paths.size() < 8) continue;
    PruneOptions opts;
    opts.k = 8;
    auto r = k_upper_bound_prune(g, 0, 16, opts);
    EXPECT_GE(r.upper_bound + 1e-12, oracle.paths.back().dist) << seed;
  }
}

TEST(UpperBound, KeepsEveryKspVertex) {
  // Theorem 4.3's precondition: no vertex of any of the K shortest paths may
  // be pruned.
  for (std::uint64_t seed : {211u, 212u, 213u}) {
    auto g = test::random_graph(32, 96, seed);
    auto oracle = ksp::bruteforce_ksp(g, 0, 16, 8);
    if (oracle.paths.empty()) continue;
    PruneOptions opts;
    opts.k = 8;
    auto r = k_upper_bound_prune(g, 0, 16, opts);
    for (const auto& p : oracle.paths)
      for (vid_t v : p.verts) EXPECT_TRUE(r.vertex_keep[v]) << "seed " << seed;
  }
}

TEST(UpperBound, UnreachableTargetPrunesEverything) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  auto r = k_upper_bound_prune(g, 0, 2, {});
  EXPECT_EQ(r.kept_vertices, 0);
  EXPECT_EQ(r.upper_bound, kInfDist);
}

TEST(UpperBound, FewerPathsThanKKeepsAllReachable) {
  // Only one simple path exists; with K = 5 the bound must fall back to inf
  // and keep every s-t-reachable vertex.
  auto g = graph::path(6, {graph::WeightKind::kUnit, 1});
  PruneOptions opts;
  opts.k = 5;
  auto r = k_upper_bound_prune(g, 0, 5, opts);
  EXPECT_EQ(r.upper_bound, kInfDist);
  EXPECT_EQ(r.kept_vertices, 6);
}

TEST(UpperBound, SourceAndTargetAlwaysKept) {
  for (std::uint64_t seed : {221u, 222u}) {
    auto g = test::random_graph(64, 512, seed);
    PruneOptions opts;
    opts.k = 2;
    auto r = k_upper_bound_prune(g, 0, 32, opts);
    if (r.kept_vertices == 0) continue;  // unreachable pair
    EXPECT_TRUE(r.vertex_keep[0]);
    EXPECT_TRUE(r.vertex_keep[32]);
  }
}

TEST(UpperBound, ParallelMatchesSerial) {
  auto g = test::random_graph(300, 2400, 231);
  PruneOptions ser;
  ser.k = 8;
  PruneOptions par = ser;
  par.parallel = true;
  auto a = k_upper_bound_prune(g, 0, 150, ser);
  auto b = k_upper_bound_prune(g, 0, 150, par);
  EXPECT_EQ(a.kept_vertices, b.kept_vertices);
  EXPECT_NEAR(a.upper_bound, b.upper_bound, 1e-9);
  EXPECT_EQ(a.vertex_keep, b.vertex_keep);
}

TEST(UpperBound, LargerKKeepsMore) {
  auto g = test::random_graph(200, 1600, 233);
  PruneOptions small;
  small.k = 2;
  PruneOptions large;
  large.k = 64;
  auto a = k_upper_bound_prune(g, 0, 100, small);
  auto b = k_upper_bound_prune(g, 0, 100, large);
  EXPECT_LE(a.kept_vertices, b.kept_vertices);
  EXPECT_LE(a.upper_bound, b.upper_bound);
}

TEST(UpperBound, EdgeKeepPaperRule) {
  // Paper rule (line 13): only the weight matters.
  auto ex = test::paper_example_graph();
  PruneOptions opts;
  opts.k = 3;
  auto r = k_upper_bound_prune(ex.g, ex.s, ex.t, opts);
  ASSERT_TRUE(static_cast<bool>(r.edge_keep));
  EXPECT_TRUE(r.edge_keep(0, 1, 14.0));
  EXPECT_FALSE(r.edge_keep(0, 1, 14.5));
}

TEST(UpperBound, TightEdgePruneIsStrongerButStillSound) {
  for (std::uint64_t seed : {241u, 242u}) {
    auto g = test::random_graph(32, 96, seed);
    auto oracle = ksp::bruteforce_ksp(g, 0, 16, 6);
    if (oracle.paths.size() < 6) continue;
    PruneOptions opts;
    opts.k = 6;
    opts.tight_edge_prune = true;
    auto r = k_upper_bound_prune(g, 0, 16, opts);
    // Soundness: every edge on every oracle path survives the tight rule.
    for (const auto& p : oracle.paths) {
      for (size_t i = 0; i + 1 < p.verts.size(); ++i) {
        const eid_t e = g.find_edge(p.verts[i], p.verts[i + 1]);
        EXPECT_TRUE(r.edge_keep(p.verts[i], p.verts[i + 1], g.edge_weight(e)))
            << "seed " << seed;
      }
    }
  }
}

TEST(UpperBound, PruningPowerIsHighOnBigGraphs) {
  // The paper's headline: ~98% of vertices pruned. On a 2^12-vertex R-MAT we
  // should see well over half the graph vanish for K = 8.
  auto g = graph::rmat(12, 8);
  PruneOptions opts;
  opts.k = 8;
  auto r = k_upper_bound_prune(g, 1, 2000, opts);
  if (r.kept_vertices == 0) GTEST_SKIP() << "unreachable pair";
  EXPECT_LT(r.kept_vertices, g.num_vertices() / 2);
}

}  // namespace
}  // namespace peek::core
