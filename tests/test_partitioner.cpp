#include "parallel/partitioner.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_util.hpp"

namespace peek::par {
namespace {

void check_cover(const std::vector<VertexRange>& ranges, vid_t n) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().begin, 0);
  EXPECT_EQ(ranges.back().end, n);
  for (size_t i = 0; i + 1 < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].end, ranges[i + 1].begin);
    EXPECT_LE(ranges[i].begin, ranges[i].end);
  }
}

TEST(PartitionByVertices, CoversAndBalances) {
  auto ranges = partition_by_vertices(100, 7);
  check_cover(ranges, 100);
  for (const auto& r : ranges) EXPECT_LE(r.end - r.begin, 15);
}

TEST(PartitionByVertices, MorePartsThanVertices) {
  auto ranges = partition_by_vertices(3, 8);
  check_cover(ranges, 3);
  EXPECT_EQ(ranges.size(), 8u);  // trailing parts empty
}

TEST(PartitionByVertices, RejectsZeroParts) {
  EXPECT_THROW(partition_by_vertices(10, 0), std::invalid_argument);
}

TEST(PartitionByEdges, CoversVertexSpace) {
  auto g = peek::graph::rmat(10, 16);
  auto ranges = partition_by_edges(g, 8);
  check_cover(ranges, g.num_vertices());
}

TEST(PartitionByEdges, BalancesSkewedDegrees) {
  // R-MAT is heavily skewed; edge-balanced split must bound each part's edge
  // count near m/parts (up to one hub vertex of slack).
  auto g = peek::graph::rmat(12, 16);
  const int parts = 8;
  auto ranges = partition_by_edges(g, parts);
  eid_t max_deg = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    max_deg = std::max(max_deg, g.degree(v));
  const eid_t ideal = g.num_edges() / parts;
  for (const auto& r : ranges) {
    eid_t edges = 0;
    for (vid_t v = r.begin; v < r.end; ++v) edges += g.degree(v);
    EXPECT_LE(edges, ideal + max_deg + 1);
  }
}

TEST(PartitionByEdges, SinglePart) {
  auto g = test::random_graph(20, 60, 2);
  auto ranges = partition_by_edges(g, 1);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0);
  EXPECT_EQ(ranges[0].end, 20);
}

}  // namespace
}  // namespace peek::par
