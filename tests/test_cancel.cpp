// CancelToken linked() chains (DESIGN.md §9): the serving tier builds
// grandparent → parent → child chains (caller token → per-query deadline →
// per-hedge-attempt token), so propagation must work transitively, siblings
// must stay isolated, and dropping token handles mid-chain must neither
// break propagation (the State chain is shared_ptr-held) nor keep a
// cancelled subtree alive once the last handle goes (ASan/LSan CI builds
// back the no-leak half of this contract).
#include <gtest/gtest.h>

#include <chrono>
#include <utility>
#include <vector>

#include "fault/cancel.hpp"
#include "fault/status.hpp"

namespace peek {
namespace {

using namespace std::chrono_literals;
using fault::CancelToken;

TEST(CancelChainTest, GrandparentCancelPropagatesTwoLinks) {
  auto grandparent = CancelToken::cancellable();
  auto parent = CancelToken::linked(grandparent);
  auto child = CancelToken::linked(parent);

  EXPECT_FALSE(child.triggered());
  grandparent.cancel();
  EXPECT_TRUE(parent.triggered());
  EXPECT_TRUE(child.triggered());
  EXPECT_TRUE(child.cancelled_fast());
  EXPECT_EQ(child.why(), fault::Status::kCancelled);
}

TEST(CancelChainTest, DeepChainPropagates) {
  auto root = CancelToken::cancellable();
  CancelToken leaf = root;
  for (int i = 0; i < 64; ++i) leaf = CancelToken::linked(leaf);

  EXPECT_FALSE(leaf.triggered());
  root.cancel();
  EXPECT_TRUE(leaf.triggered());
  EXPECT_EQ(leaf.why(), fault::Status::kCancelled);
}

TEST(CancelChainTest, MidChainDeadlinePropagatesAsDeadlineExceeded) {
  auto grandparent = CancelToken::cancellable();
  auto parent = CancelToken::linked(grandparent,
                                    /*budget=*/CancelToken::Clock::duration(0));
  auto child = CancelToken::linked(parent);

  // parent's deadline is already past; the leaf observes it transitively.
  EXPECT_TRUE(child.triggered());
  EXPECT_EQ(child.why(), fault::Status::kDeadlineExceeded);
  EXPECT_FALSE(grandparent.triggered());
}

TEST(CancelChainTest, ChildCancelDoesNotTouchParentOrSibling) {
  auto parent = CancelToken::cancellable();
  auto attempt_a = CancelToken::linked(parent);
  auto attempt_b = CancelToken::linked(parent);

  // Hedged-attempt semantics: abandoning one attempt leaves the other and
  // the caller's token untouched.
  attempt_a.cancel();
  EXPECT_TRUE(attempt_a.triggered());
  EXPECT_FALSE(attempt_b.triggered());
  EXPECT_FALSE(parent.triggered());
}

TEST(CancelChainTest, DroppedIntermediateHandleKeepsChainAlive) {
  auto grandparent = CancelToken::cancellable();
  CancelToken child;
  {
    auto parent = CancelToken::linked(grandparent);
    child = CancelToken::linked(parent);
  }  // parent handle destroyed; its State survives via child's chain.

  EXPECT_FALSE(child.triggered());
  grandparent.cancel();
  EXPECT_TRUE(child.triggered());
  EXPECT_EQ(child.why(), fault::Status::kCancelled);
}

TEST(CancelChainTest, DroppedChildrenDoNotLeakOrAffectParent) {
  auto parent = CancelToken::cancellable();
  // Churn many short-lived linked children, as the hedge loop does. Each
  // child's State must die with its last handle (LSan-verified in CI); the
  // parent must come through untriggered and still usable.
  for (int round = 0; round < 100; ++round) {
    std::vector<CancelToken> attempts;
    for (int i = 0; i < 8; ++i) attempts.push_back(CancelToken::linked(parent));
    attempts[static_cast<size_t>(round % 8)].cancel();
  }
  EXPECT_FALSE(parent.triggered());
  auto last = CancelToken::linked(parent);
  parent.cancel();
  EXPECT_TRUE(last.triggered());
}

TEST(CancelChainTest, CopiedHandlesShareOneState) {
  auto original = CancelToken::cancellable();
  CancelToken copy = original;
  CancelToken moved = std::move(original);

  copy.cancel();
  EXPECT_TRUE(moved.triggered());
  EXPECT_EQ(moved.why(), fault::Status::kCancelled);
}

}  // namespace
}  // namespace peek
