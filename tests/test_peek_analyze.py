#!/usr/bin/env python3
"""Unit tests for tools/peek_analyze.py: the seeded violations in
tests/analyze_fixtures/ must each be caught, the compliant variants must
not, and the real src/ tree must be clean (the CI gate)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
ANALYZE = os.path.join(REPO, "tools", "peek_analyze.py")
FIXTURES = os.path.join(HERE, "analyze_fixtures")


def run_analyze(*args):
    proc = subprocess.run(
        [sys.executable, ANALYZE, "--engine", "builtin", *args],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


class FixtureFindings(unittest.TestCase):
    """One analyzer run over the fixture tree, shared by every assertion."""

    @classmethod
    def setUpClass(cls):
        fd, cls.out_path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        cls.rc, cls.text = run_analyze("--root", FIXTURES,
                                       "--out", cls.out_path)
        with open(cls.out_path, encoding="utf-8") as f:
            cls.report = json.load(f)
        cls.findings = cls.report["findings"]

    @classmethod
    def tearDownClass(cls):
        os.unlink(cls.out_path)

    def lines(self, check, filename):
        return [f["line"] for f in self.findings
                if f["check"] == check and f["file"].endswith(filename)]

    def fixture_line(self, filename, needle):
        path = os.path.join(FIXTURES, filename)
        with open(path, encoding="utf-8") as f:
            for no, line in enumerate(f, start=1):
                if needle in line:
                    return no
        raise AssertionError(f"{needle!r} not found in {filename}")

    def test_exit_nonzero_on_findings(self):
        self.assertEqual(self.rc, 1, self.text)

    def test_out_json_shape(self):
        self.assertEqual(self.report["engine"], "builtin")
        self.assertIn("cancel", self.report["checks"])
        for f in self.findings:
            self.assertIn("file", f)
            self.assertIn("line", f)
            self.assertIn("check", f)
            self.assertIn("message", f)

    # ---- cancel ----

    def test_unbounded_poll_free_loop_caught(self):
        line = self.fixture_line("core/bad_loops.cpp", "for (;;) {")
        self.assertIn(line, self.lines("cancel", "bad_loops.cpp"))

    def test_heavy_callee_loop_caught(self):
        want = self.fixture_line(
            "core/bad_loops.cpp",
            "for (peek::vid_t v = 0; v < g.num_vertices(); ++v) {")
        self.assertIn(want, self.lines("cancel", "bad_loops.cpp"))

    def test_polled_and_waived_loops_clean(self):
        got = self.lines("cancel", "bad_loops.cpp")
        self.assertEqual(len(got), 2, f"unexpected cancel findings: {got}")

    # ---- status ----

    def test_bare_discard_caught(self):
        got = self.lines("status", "bad_status.cpp")
        bare = self.fixture_line("fault/bad_status.cpp",
                                 "  flaky_write(fd);")
        self.assertIn(bare, got)

    def test_void_suppression_caught(self):
        got = self.lines("status", "bad_status.cpp")
        voided = self.fixture_line("fault/bad_status.cpp",
                                   "  (void)flaky_write(fd);")
        self.assertIn(voided, got)

    def test_consumed_and_waived_status_clean(self):
        got = self.lines("status", "bad_status.cpp")
        self.assertEqual(len(got), 2, f"unexpected status findings: {got}")

    # ---- locks ----

    def test_orphan_mutex_caught(self):
        want = self.fixture_line("serve/bad_locks.hpp", "class Orphan {")
        got = self.lines("locks", "bad_locks.hpp")
        self.assertTrue(any(l > want for l in got),
                        f"no locks finding inside Orphan: {got}")

    def test_lock_findings_exactly_the_seeded_three(self):
        got = self.lines("locks", "bad_locks.hpp")
        self.assertEqual(len(got), 3, f"lock findings: {got}")
        msgs = [f["message"] for f in self.findings
                if f["check"] == "locks"]
        self.assertTrue(any("Orphan" in m for m in msgs), msgs)
        self.assertTrue(any("RawGuarded" in m for m in msgs), msgs)
        self.assertTrue(any("Striped" in m for m in msgs), msgs)
        self.assertFalse(any("StripedWaived" in m for m in msgs), msgs)
        self.assertFalse(any("Annotated" in m for m in msgs), msgs)
        self.assertFalse(any("Waived::" in m for m in msgs), msgs)


class RealTreeClean(unittest.TestCase):
    def test_src_is_clean(self):
        rc, text = run_analyze()
        self.assertEqual(rc, 0, text)


class CheckSelection(unittest.TestCase):
    def test_only_runs_one_check(self):
        rc, text = run_analyze("--root", FIXTURES, "--only", "locks")
        self.assertEqual(rc, 1)
        self.assertIn("[locks]", text)
        self.assertNotIn("[cancel]", text)
        self.assertNotIn("[status]", text)


if __name__ == "__main__":
    unittest.main()
