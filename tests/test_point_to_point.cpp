// Bidirectional Dijkstra and the ALT oracle: both must return exact
// shortest distances, and ALT's heuristic must be admissible.
#include <gtest/gtest.h>

#include "sssp/alt.hpp"
#include "sssp/bidirectional.hpp"
#include "test_util.hpp"

namespace peek::sssp {
namespace {

TEST(Bidirectional, Line) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}});
  auto r = bidirectional_dijkstra(g, 0, 3);
  EXPECT_DOUBLE_EQ(r.dist, 6.0);
  EXPECT_EQ(r.path.verts, (std::vector<vid_t>{0, 1, 2, 3}));
}

TEST(Bidirectional, SourceEqualsTarget) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  auto r = bidirectional_dijkstra(g, 0, 0);
  EXPECT_DOUBLE_EQ(r.dist, 0.0);
  EXPECT_EQ(r.path.verts, (std::vector<vid_t>{0}));
}

TEST(Bidirectional, Unreachable) {
  auto g = graph::from_edges(3, {{1, 0, 1.0}});
  auto r = bidirectional_dijkstra(g, 0, 2);
  EXPECT_EQ(r.dist, kInfDist);
  EXPECT_TRUE(r.path.empty());
}

class PointToPointSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PointToPointSweep, BidirectionalMatchesDijkstra) {
  auto g = test::random_graph(200, 1600, GetParam());
  auto ref = dijkstra(GraphView(g), 0);
  for (vid_t t : {5, 50, 100, 150, 199}) {
    auto r = bidirectional_dijkstra(g, 0, t);
    if (ref.dist[t] == kInfDist) {
      EXPECT_EQ(r.dist, kInfDist);
    } else {
      EXPECT_NEAR(r.dist, ref.dist[t], 1e-9) << "t=" << t;
      EXPECT_NEAR(path_distance(g, r.path.verts), r.dist, 1e-9);
      EXPECT_TRUE(is_simple(r.path));
    }
  }
}

TEST_P(PointToPointSweep, AltMatchesDijkstra) {
  auto g = test::random_graph(200, 1600, GetParam() + 100);
  AltOracle alt(g, {.landmarks = 4, .seed = GetParam()});
  auto ref = dijkstra(GraphView(g), 3);
  for (vid_t t : {0, 40, 80, 120, 199}) {
    auto r = alt.query(3, t);
    if (ref.dist[t] == kInfDist) {
      EXPECT_TRUE(r.path.empty());
    } else {
      EXPECT_NEAR(r.path.dist, ref.dist[t], 1e-9) << "t=" << t;
    }
  }
}

TEST_P(PointToPointSweep, AltHeuristicIsAdmissible) {
  auto g = test::random_graph(120, 960, GetParam() + 200);
  AltOracle alt(g, {.landmarks = 6, .seed = 3});
  const vid_t t = 60;
  auto rev = dijkstra(GraphView(g.reverse()), t);  // true dist(v, t)
  for (vid_t v = 0; v < 120; ++v) {
    if (rev.dist[v] == kInfDist) continue;
    EXPECT_LE(alt.heuristic(v, t), rev.dist[v] + 1e-9) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointToPointSweep,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(Alt, SettlesFewerThanFullDijkstra) {
  auto g = graph::grid(30, 30, {graph::WeightKind::kUniform01, 5});
  AltOracle alt(g, {.landmarks = 8, .seed = 2});
  auto r = alt.query(0, 899);
  ASSERT_FALSE(r.path.empty());
  // A goal-directed search across a grid must not settle everything.
  EXPECT_LT(r.settled, 900);
}

TEST(Alt, LandmarkCountClamped) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  AltOracle alt(g, {.landmarks = 50, .seed = 1});
  EXPECT_LE(alt.landmarks().size(), 3u);
}

}  // namespace
}  // namespace peek::sssp
