// Observability layer (src/obs): counter sharding and aggregation under
// OpenMP, ScopedTimer nesting, JSON round-trip through the exporter's own
// parser, and a pipeline-level check that a full peek run reports pruning
// ratios and SSSP relaxation counts into the global registry.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "core/peek.hpp"
#include "obs/json.hpp"
#include "parallel/parallel_for.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

TEST(MetricsCounter, AggregatesAcrossOpenMpThreads) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.hits");
  constexpr int kIters = 200000;
  par::parallel_for(0, kIters, [&](int) { c.inc(); });
  EXPECT_EQ(c.value(), kIters);

  obs::Counter& d = reg.counter("test.bulk");
  par::parallel_for_dynamic(0, kIters, [&](int) { d.add(3); });
  EXPECT_EQ(d.value(), std::int64_t{3} * kIters);

  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(d.value(), 0);
}

TEST(MetricsCounter, LookupReturnsStableReference) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("same.name");
  obs::Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(reg.snapshot().counters.at("same.name"), 5);
}

TEST(MetricsGauge, LastWriteWins) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("ratio");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(MetricsTimer, ScopedTimerNests) {
  obs::MetricsRegistry reg;
  obs::Timer& outer = reg.timer("outer");
  obs::Timer& inner = reg.timer("inner");
  {
    obs::ScopedTimer span_outer(outer);
    for (int i = 0; i < 3; ++i) {
      obs::ScopedTimer span_inner(inner);
      // A visible amount of work so inner accumulates nonzero time.
      volatile double sink = 0;
      for (int j = 0; j < 10000; ++j) sink = sink + j;
    }
  }
  const obs::TimerValue ov = outer.value();
  const obs::TimerValue iv = inner.value();
  EXPECT_EQ(ov.count, 1u);
  EXPECT_EQ(iv.count, 3u);
  EXPECT_GT(iv.seconds, 0.0);
  // The outer span encloses all three inner spans.
  EXPECT_GE(ov.seconds, iv.seconds);
}

TEST(MetricsJson, RoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("sssp.relaxed").add(12345);
  reg.counter("weird \"name\"\\with\tescapes").add(-7);
  reg.gauge("prune.kept_vertex_ratio").set(0.015625);
  reg.timer("peek.prune").add_nanos(1500000);  // 1.5ms, count 1
  reg.timer("peek.prune").add_nanos(500000);   // +0.5ms, count 2

  const obs::MetricsSnapshot snap = reg.snapshot();
  const std::string json = snap.to_json();
  const auto parsed = obs::parse_metrics_json(json);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->counters, snap.counters);
  ASSERT_EQ(parsed->gauges.size(), snap.gauges.size());
  for (const auto& [name, v] : snap.gauges)
    EXPECT_NEAR(parsed->gauges.at(name), v, 1e-12) << name;
  ASSERT_EQ(parsed->timers.size(), snap.timers.size());
  for (const auto& [name, v] : snap.timers) {
    EXPECT_EQ(parsed->timers.at(name).count, v.count) << name;
    EXPECT_NEAR(parsed->timers.at(name).seconds, v.seconds, 1e-9) << name;
  }
}

TEST(MetricsJson, EmptySnapshotRoundTrips) {
  const obs::MetricsSnapshot empty;
  const auto parsed = obs::parse_metrics_json(empty.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(MetricsJson, RejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_metrics_json("").has_value());
  EXPECT_FALSE(obs::parse_metrics_json("{").has_value());
  EXPECT_FALSE(obs::parse_metrics_json("[1,2,3]").has_value());
  EXPECT_FALSE(obs::parse_metrics_json("{\"unknown\": {}}").has_value());
  EXPECT_FALSE(
      obs::parse_metrics_json("{\"counters\": {\"x\": }}").has_value());
}

#if PEEK_OBS_ENABLED
// Pipeline-level: a full PeeK run on the paper's running example must report
// pruning (kept/n < 1 — the figure prunes 9 of 16 vertices), nonzero SSSP
// relaxation counts, and one span per stage timer.
TEST(MetricsPipeline, PeekRunPopulatesRegistry) {
  obs::MetricsRegistry::global().reset();
  const auto ex = test::paper_example_graph();

  core::PeekOptions po;
  po.k = 3;
  po.collect_metrics = true;
  const core::PeekResult r = core::peek_ksp(ex.g, ex.s, ex.t, po);
  ASSERT_EQ(r.ksp.paths.size(), 3u);

  ASSERT_TRUE(r.metrics.has_value());
  const obs::MetricsSnapshot& m = *r.metrics;

  ASSERT_TRUE(m.gauges.count("peek.kept_vertex_ratio"));
  EXPECT_GT(m.gauges.at("peek.kept_vertex_ratio"), 0.0);
  EXPECT_LT(m.gauges.at("peek.kept_vertex_ratio"), 1.0);
  EXPECT_DOUBLE_EQ(
      m.gauges.at("peek.kept_vertex_ratio"),
      static_cast<double>(r.kept_vertices) / ex.g.num_vertices());

  // Serial pipeline: pruning + deviation SSSPs run through Dijkstra.
  ASSERT_TRUE(m.counters.count("sssp.dijkstra.relaxed_edges"));
  EXPECT_GT(m.counters.at("sssp.dijkstra.relaxed_edges"), 0);
  EXPECT_GT(m.counters.at("sssp.dijkstra.runs"), 0);
  EXPECT_EQ(m.counters.at("prune.runs"), 1);
  EXPECT_GT(m.counters.at("prune.kept_vertices"), 0);
  EXPECT_GT(m.counters.at("ksp.paths_accepted"), 0);

  for (const char* stage : {"peek.prune", "peek.compact", "peek.ksp"}) {
    ASSERT_TRUE(m.timers.count(stage)) << stage;
    EXPECT_EQ(m.timers.at(stage).count, 1u) << stage;
  }
}
#else
// With the hooks compiled out the pipeline must stay silent: a metrics
// snapshot is attached on request but carries no hook-reported values.
TEST(MetricsPipeline, ObsOffKeepsRegistryQuiet) {
  obs::MetricsRegistry::global().reset();
  const auto ex = test::paper_example_graph();
  core::PeekOptions po;
  po.k = 3;
  po.collect_metrics = true;
  const core::PeekResult r = core::peek_ksp(ex.g, ex.s, ex.t, po);
  ASSERT_EQ(r.ksp.paths.size(), 3u);
  ASSERT_TRUE(r.metrics.has_value());
  EXPECT_EQ(r.metrics->counters.count("sssp.dijkstra.relaxed_edges"), 0u);
  EXPECT_EQ(r.metrics->timers.count("peek.prune"), 0u);
}
#endif  // PEEK_OBS_ENABLED

}  // namespace
}  // namespace peek
