// The cross-algorithm property suite (DESIGN.md §6): on many random graphs,
// all six KSP implementations must return the same distance multiset as the
// brute-force oracle, and every returned path must satisfy the structural
// invariants of Definition 1.
#include <gtest/gtest.h>

#include "core/peek.hpp"
#include "ksp/bruteforce.hpp"
#include "ksp/node_classification.hpp"
#include "ksp/optyen.hpp"
#include "ksp/pnc.hpp"
#include "ksp/sidetrack.hpp"
#include "ksp/yen.hpp"
#include "test_util.hpp"

namespace peek::ksp {
namespace {

struct AgreementParam {
  const char* kind;  // generator family
  std::uint64_t seed;
  int k;
  bool unit;
};

void PrintTo(const AgreementParam& p, std::ostream* os) {
  *os << p.kind << "/seed" << p.seed << "/k" << p.k << (p.unit ? "/unit" : "");
}

graph::CsrGraph make_graph(const AgreementParam& p) {
  graph::WeightOptions w;
  w.kind = p.unit ? graph::WeightKind::kUnit : graph::WeightKind::kUniform01;
  w.seed = p.seed + 1000;
  if (std::string(p.kind) == "er") return graph::erdos_renyi(32, 96, w, p.seed);
  if (std::string(p.kind) == "dag") return graph::layered_dag(4, 4, 3, w, p.seed);
  if (std::string(p.kind) == "grid") return graph::grid(4, 5, w, p.seed);
  if (std::string(p.kind) == "sw") return graph::small_world(28, 3, 0.2, w, p.seed);
  return graph::complete(9, w, p.seed);
}

class KspAgreement : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(KspAgreement, AllAlgorithmsMatchOracle) {
  const auto p = GetParam();
  auto g = make_graph(p);
  const vid_t s = 0;
  const vid_t t = g.num_vertices() - 1;
  KspOptions opts;
  opts.k = p.k;

  auto oracle = bruteforce_ksp(g, s, t, p.k);
  SCOPED_TRACE(::testing::PrintToString(p));

  auto check = [&](const char* name, const KspResult& r) {
    SCOPED_TRACE(name);
    test::check_ksp_invariants(g, s, t, r.paths);
    test::expect_same_distances(oracle.paths, r.paths);
  };
  check("yen", yen_ksp(g, s, t, opts));
  check("optyen", optyen_ksp(g, s, t, opts));
  check("nc", nc_ksp(g, s, t, opts));
  check("sb", sb_ksp(g, s, t, opts));
  check("sb*", sb_star_ksp(g, s, t, opts));
  check("pnc", pnc_ksp(g, s, t, opts));
  check("pnc*", pnc_star_ksp(g, s, t, opts));

  core::PeekOptions po;
  po.k = p.k;
  check("peek", core::peek_ksp(g, s, t, po).ksp);

  // PeeK in every compaction mode must also agree (Theorem 4.3 + compaction
  // equivalence in one assertion).
  for (auto mode : {core::PeekOptions::Compaction::kEdgeSwap,
                    core::PeekOptions::Compaction::kRegeneration,
                    core::PeekOptions::Compaction::kStatusArray}) {
    po.compaction = mode;
    check("peek-mode", core::peek_ksp(g, s, t, po).ksp);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KspAgreement,
    ::testing::Values(
        AgreementParam{"er", 1, 4, false}, AgreementParam{"er", 2, 8, false},
        AgreementParam{"er", 3, 16, false}, AgreementParam{"er", 4, 8, true},
        AgreementParam{"er", 5, 12, false}, AgreementParam{"er", 6, 8, false},
        AgreementParam{"dag", 7, 8, false}, AgreementParam{"dag", 8, 16, false},
        AgreementParam{"dag", 9, 8, true}, AgreementParam{"grid", 10, 8, false},
        AgreementParam{"grid", 11, 12, true},
        AgreementParam{"sw", 12, 8, false}, AgreementParam{"sw", 13, 16, false},
        AgreementParam{"complete", 14, 20, false},
        AgreementParam{"complete", 15, 8, true}));

// PeeK must equal plain OptYen on bigger graphs too (no oracle there).
class PeekVsOptYen : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeekVsOptYen, SameDistancesOnMediumGraphs) {
  auto g = test::random_graph(400, 3200, GetParam());
  KspOptions ko;
  ko.k = 10;
  auto base = optyen_ksp(g, 0, 200, ko);
  core::PeekOptions po;
  po.k = 10;
  auto mine = core::peek_ksp(g, 0, 200, po);
  test::expect_same_distances(base.paths, mine.ksp.paths);
  test::check_ksp_invariants(g, 0, 200, mine.ksp.paths);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeekVsOptYen,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u));

}  // namespace
}  // namespace peek::ksp
