#include "dyn/dynamic_sssp.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace peek::dyn {
namespace {

TEST(DynamicSssp, MatchesStaticDijkstra) {
  auto csr = test::random_graph(150, 1200, 511);
  DynamicGraph g(csr);
  auto dynamic = dynamic_dijkstra(g, 0);
  auto baseline = sssp::dijkstra(sssp::GraphView(csr), 0);
  for (vid_t v = 0; v < 150; ++v) {
    if (baseline.dist[v] == kInfDist) {
      EXPECT_EQ(dynamic.dist[v], kInfDist);
    } else {
      EXPECT_NEAR(dynamic.dist[v], baseline.dist[v], 1e-9) << v;
    }
  }
}

TEST(DynamicSssp, SeesDeletions) {
  // 0 -> 1 -> 3 (2) vs 0 -> 2 -> 3 (4); delete the fast middle vertex.
  auto csr = graph::from_edges(
      4, {{0, 1, 1.0}, {1, 3, 1.0}, {0, 2, 2.0}, {2, 3, 2.0}});
  DynamicGraph g(csr);
  g.delete_vertex(1);
  auto r = dynamic_dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 4.0);
  EXPECT_EQ(r.dist[1], kInfDist);
}

TEST(DynamicSssp, SeesEdgeDeletions) {
  auto csr = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}});
  DynamicGraph g(csr);
  g.delete_edge(1, 2);
  auto r = dynamic_dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 5.0);
}

TEST(DynamicSssp, EarlyExit) {
  auto csr = test::random_graph(100, 800, 513);
  DynamicGraph g(csr);
  auto full = dynamic_dijkstra(g, 0);
  auto early = dynamic_dijkstra(g, 0, 50);
  if (full.dist[50] != kInfDist) {
    EXPECT_NEAR(early.dist[50], full.dist[50], 1e-9);
  }
}

TEST(DynamicSssp, InvalidSource) {
  DynamicGraph g(3);
  EXPECT_EQ(dynamic_dijkstra(g, -1).dist[0], kInfDist);
  auto csr = graph::from_edges(3, {{0, 1, 1.0}});
  DynamicGraph g2(csr);
  g2.delete_vertex(0);
  EXPECT_EQ(dynamic_dijkstra(g2, 0).dist[1], kInfDist);
}

}  // namespace
}  // namespace peek::dyn
