#include "ksp/hop_limited.hpp"

#include <gtest/gtest.h>

#include "ksp/bruteforce.hpp"
#include "sssp/hop_limited.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

using sssp::GraphView;
using sssp::hop_limited_sssp;

TEST(HopLimitedSssp, PrefersCheapWithinBudget) {
  // 0 -> 1 -> 2 -> 3 costs 3 (3 hops); direct 0 -> 3 costs 10 (1 hop).
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0},
                                 {0, 3, 10.0}});
  auto unlimited = hop_limited_sssp(GraphView(g), 0, 5, 3);
  EXPECT_DOUBLE_EQ(unlimited.dist[3], 3.0);
  EXPECT_EQ(unlimited.path.verts, (std::vector<vid_t>{0, 1, 2, 3}));
  auto limited = hop_limited_sssp(GraphView(g), 0, 2, 3);
  EXPECT_DOUBLE_EQ(limited.dist[3], 10.0);  // forced onto the direct edge
  EXPECT_EQ(limited.path.verts, (std::vector<vid_t>{0, 3}));
  auto zero = hop_limited_sssp(GraphView(g), 0, 0, 3);
  EXPECT_EQ(zero.dist[3], kInfDist);
  EXPECT_DOUBLE_EQ(zero.dist[0], 0.0);
}

TEST(HopLimitedSssp, LargeBudgetMatchesDijkstra) {
  auto g = test::random_graph(100, 700, 971);
  auto ref = sssp::dijkstra(GraphView(g), 0);
  auto dp = hop_limited_sssp(GraphView(g), 0, 99, kNoVertex);
  for (vid_t v = 0; v < 100; ++v) {
    if (ref.dist[v] == kInfDist) EXPECT_EQ(dp.dist[v], kInfDist);
    else EXPECT_NEAR(dp.dist[v], ref.dist[v], 1e-9) << v;
  }
}

TEST(HopLimitedSssp, PathsRespectBudgetAndPrice) {
  auto g = test::random_graph(80, 560, 973);
  for (int budget : {1, 2, 3, 5, 8}) {
    for (vid_t t : {10, 40, 79}) {
      auto r = hop_limited_sssp(GraphView(g), 0, budget, t);
      if (r.path.empty()) continue;
      EXPECT_LE(r.path.hops(), static_cast<size_t>(budget));
      EXPECT_NEAR(sssp::path_distance(g, r.path.verts), r.dist[t], 1e-9);
    }
  }
}

TEST(HopLimitedSssp, RespectsBans) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {1, 3, 1.0}, {0, 2, 2.0},
                                 {2, 3, 2.0}});
  std::vector<std::uint8_t> banned(4, 0);
  banned[1] = 1;
  auto r = hop_limited_sssp(GraphView(g), 0, 3, 3,
                            sssp::Bans{banned.data(), nullptr});
  EXPECT_DOUBLE_EQ(r.dist[3], 4.0);
}

TEST(HopLimitedSssp, BudgetMatchesFilteredBruteforce) {
  for (std::uint64_t seed : {981u, 982u, 983u}) {
    auto g = test::random_graph(24, 72, seed);
    auto all = ksp::enumerate_all_simple_paths(GraphView(g), 0, 12);
    for (int budget : {2, 3, 4}) {
      weight_t best = kInfDist;
      for (const auto& p : all)
        if (p.hops() <= static_cast<size_t>(budget))
          best = std::min(best, p.dist);
      auto r = hop_limited_sssp(GraphView(g), 0, budget, 12);
      if (best == kInfDist) {
        EXPECT_TRUE(r.path.empty());
      } else {
        EXPECT_NEAR(r.dist[12], best, 1e-9) << "seed " << seed << " H " << budget;
      }
    }
  }
}

TEST(HopLimitedKsp, MatchesFilteredOracle) {
  for (std::uint64_t seed : {991u, 992u, 993u}) {
    auto g = test::random_graph(24, 72, seed);
    auto all = ksp::enumerate_all_simple_paths(GraphView(g), 0, 12);
    for (int budget : {3, 4, 6}) {
      std::vector<sssp::Path> feasible;
      for (const auto& p : all)
        if (p.hops() <= static_cast<size_t>(budget)) feasible.push_back(p);
      const int k = 6;
      auto r = ksp::hop_limited_ksp(g, 0, 12, k, budget);
      ASSERT_EQ(r.paths.size(),
                std::min<size_t>(feasible.size(), static_cast<size_t>(k)))
          << "seed " << seed << " H " << budget;
      for (size_t i = 0; i < r.paths.size(); ++i) {
        EXPECT_NEAR(r.paths[i].dist, feasible[i].dist, 1e-9);
        EXPECT_LE(r.paths[i].hops(), static_cast<size_t>(budget));
      }
      test::check_ksp_invariants(g, 0, 12, r.paths);
    }
  }
}

TEST(HopLimitedKsp, UnlimitedBudgetMatchesPlainKsp) {
  auto g = test::random_graph(32, 96, 995);
  auto plain = ksp::bruteforce_ksp(g, 0, 16, 8);
  auto hop = ksp::hop_limited_ksp(g, 0, 16, 8, 31);
  test::expect_same_distances(plain.paths, hop.paths);
}

TEST(HopLimitedKsp, InvalidInputs) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  EXPECT_TRUE(ksp::hop_limited_ksp(g, 0, 1, 0, 5).paths.empty());
  EXPECT_TRUE(ksp::hop_limited_ksp(g, 0, 1, 3, 0).paths.empty());
  EXPECT_EQ(ksp::hop_limited_ksp(g, 0, 1, 3, 1).paths.size(), 1u);
}

}  // namespace
}  // namespace peek
