// Seeded violations for tools/peek_analyze.py, check `cancel`. NOT compiled
// — tests/test_peek_analyze.py points the analyzer at this tree and asserts
// each seeded finding is caught and each compliant variant is not.
#include "core/peek.hpp"

namespace fixture {

// VIOLATION: unbounded loop, no poll, no waiver.
int spin_forever() {
  int x = 0;
  for (;;) {
    if (++x > 100) return x;
  }
}

// VIOLATION: bounded loop invoking a heavy callee without polling.
void all_pairs(const peek::graph::CsrGraph& g) {
  for (peek::vid_t v = 0; v < g.num_vertices(); ++v) {
    auto r = peek::sssp::dijkstra(peek::sssp::GraphView(g), v);
    (void)r.dist.size();
  }
}

// OK: unbounded loop that polls through a CancelPoll.
int spin_polled(const peek::fault::CancelToken* cancel) {
  peek::fault::CancelPoll poll(cancel);
  int x = 0;
  while (true) {
    if (poll.should_stop()) return x;
    ++x;
  }
}

// OK: heavy callee, but the loop forwards the cancel token into it.
void all_pairs_cancellable(const peek::graph::CsrGraph& g,
                           const peek::fault::CancelToken* cancel) {
  for (peek::vid_t v = 0; v < g.num_vertices(); ++v) {
    peek::sssp::SsspOptions so;
    so.cancel = cancel;
    auto r = peek::sssp::dijkstra(peek::sssp::GraphView(g), v, so);
  }
}

// OK: waived with a reason on the loop header.
int spin_waived() {
  int x = 0;
  while (true) {  // no-cancel: fixture of the waiver grammar; O(1) body
    if (++x > 100) return x;
  }
}

}  // namespace fixture
