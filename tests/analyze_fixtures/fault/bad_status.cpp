// Seeded violations for tools/peek_analyze.py, check `status`. NOT compiled.
#include "fault/status.hpp"

namespace fixture {

peek::fault::Status flaky_write(int fd);
Status helper_status();  // declares helper_status as Status-returning

void caller(int fd) {
  // VIOLATION: bare statement drops the returned Status.
  flaky_write(fd);

  // VIOLATION: (void) suppression without a reason.
  (void)flaky_write(fd);

  // OK: consumed.
  peek::fault::Status st = flaky_write(fd);
  if (!st.ok()) return;

  // OK: consumed via a multi-line statement (continuation, not a discard).
  const peek::fault::Status st2 =
      flaky_write(fd);
  (void)st2.ok();

  // OK: waived with a reason.
  (void)flaky_write(fd);  // status-ignored: fixture of the waiver grammar
}

}  // namespace fixture
