// Seeded violations for tools/peek_analyze.py, check `locks`. NOT compiled.
#pragma once

#include <mutex>
#include <vector>

#include "check/thread_safety.hpp"

namespace fixture {

// VIOLATION: mutex member never named by any annotation in its class.
class Orphan {
 private:
  std::mutex mu_;
  int value_ = 0;
};

// VIOLATION: paired, but with a raw std::mutex the analysis cannot see.
class RawGuarded {
 private:
  std::mutex mu_;
  int value_ PEEK_GUARDED_BY(mu_) = 0;
};

// VIOLATION: lock container without a documented per-index discipline.
class Striped {
 private:
  std::vector<std::mutex> stripes_;
};

// OK: annotated capability with a guarded field.
class Annotated {
 private:
  peek::check::Mutex mu_;
  int value_ PEEK_GUARDED_BY(mu_) = 0;
};

// OK: waived with a reason on the declaration line.
class Waived {
 private:
  std::mutex mu_;  // ts-allow: fixture of the waiver grammar
};

// OK: lock container with the per-index discipline documented above it.
class StripedWaived {
 private:
  // ts-allow: stripes_[i] guards slots_[i]; inexpressible per-index locks
  std::vector<std::mutex> stripes_;
};

}  // namespace fixture
