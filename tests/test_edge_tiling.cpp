// PR 6 optimizations hold their bit-identity contracts:
//   - edge-tiled Δ-stepping (DeltaSteppingOptions::tiled) returns the same
//     distances and parents as the untiled phase loop, even with a tiny
//     tile_size that splits every realistic frontier vertex;
//   - dijkstra_path over an arena-backed SsspScratch equals dijkstra() +
//     path_from_parents(), including under vertex/edge bans;
//   - Yen-family KSP with KspOptions::scratch_arena on/off returns identical
//     path sets;
//   - SsspScratch accounts reused bytes across passes (the
//     ksp.arena.reuse_bytes source).
#include <gtest/gtest.h>

#include <unordered_set>

#include "ksp/optyen.hpp"
#include "ksp/yen.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/scratch.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

using sssp::GraphView;

void expect_bit_identical(const sssp::SsspResult& a,
                          const sssp::SsspResult& b) {
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (size_t v = 0; v < a.dist.size(); ++v) {
    EXPECT_EQ(a.dist[v], b.dist[v]) << "dist, vertex " << v;
    EXPECT_EQ(a.parent[v], b.parent[v]) << "parent, vertex " << v;
  }
}

TEST(EdgeTiling, TiledMatchesUntiledOnRandomGraphs) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    auto g = test::random_graph(300, 300 * 10, seed, /*unit=*/false);
    sssp::DeltaSteppingOptions untiled;
    untiled.parallel = true;
    untiled.tiled = false;
    auto ref = sssp::delta_stepping(GraphView(g), 0, untiled);

    sssp::DeltaSteppingOptions tiled = untiled;
    tiled.tiled = true;
    tiled.tile_single_worker = true;  // exercise tiling even on 1-core CI
    tiled.tile_size = 4;  // far below any real degree: every hub splits
    auto got = sssp::delta_stepping(GraphView(g), 0, tiled);
    expect_bit_identical(ref, got);
  }
}

TEST(EdgeTiling, TiledMatchesDijkstraWithTarget) {
  auto g = test::random_graph(400, 400 * 8, 11, /*unit=*/false);
  auto dj = sssp::dijkstra(GraphView(g), 0);
  sssp::DeltaSteppingOptions opts;
  opts.parallel = true;
  opts.tiled = true;
  opts.tile_single_worker = true;
  opts.tile_size = 8;
  auto ds = sssp::delta_stepping(GraphView(g), 0, opts);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(dj.dist[v], ds.dist[v]) << "vertex " << v;
}

TEST(ScratchDijkstra, PathMatchesBaselineOnRandomGraphs) {
  sssp::SsspScratch scratch;  // shared across graphs: bind() must rebind
  for (std::uint64_t seed : {7, 8, 9}) {
    auto g = test::random_graph(250, 250 * 8, seed, /*unit=*/false);
    GraphView view(g);
    for (vid_t t = 1; t < 40; t += 7) {
      sssp::DijkstraOptions opts;
      opts.target = t;
      auto r = sssp::dijkstra(view, 0, opts);
      auto want = sssp::path_from_parents(r, 0, t);
      auto got = sssp::dijkstra_path(view, 0, opts, scratch);
      EXPECT_EQ(want.verts, got.verts) << "target " << t;
      EXPECT_EQ(want.dist, got.dist) << "target " << t;  // bit-identical
    }
  }
}

TEST(ScratchDijkstra, RespectsBans) {
  auto g = test::random_graph(200, 200 * 8, 21, /*unit=*/false);
  GraphView view(g);
  std::vector<std::uint8_t> banned(200, 0);
  for (vid_t v = 3; v < 200; v += 5) banned[v] = 1;
  std::unordered_set<eid_t> banned_edges{0, 5, 9, 42};
  sssp::DijkstraOptions opts;
  opts.target = 100;
  opts.bans = {banned.data(), &banned_edges};

  auto r = sssp::dijkstra(view, 1, opts);
  auto want = sssp::path_from_parents(r, 1, 100);
  sssp::SsspScratch scratch;
  auto got = sssp::dijkstra_path(view, 1, opts, scratch);
  EXPECT_EQ(want.verts, got.verts);
  EXPECT_EQ(want.dist, got.dist);
}

TEST(ScratchDijkstra, UnreachableAndInvalidTargets) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  GraphView view(g);
  sssp::SsspScratch scratch;
  sssp::DijkstraOptions opts;
  opts.target = 3;  // other component
  EXPECT_TRUE(sssp::dijkstra_path(view, 0, opts, scratch).empty());
  opts.target = kNoVertex;  // no target = no path to extract
  EXPECT_TRUE(sssp::dijkstra_path(view, 0, opts, scratch).empty());
}

TEST(ScratchDijkstra, AccountsReuseAcrossPasses) {
  auto g = test::random_graph(100, 800, 31, /*unit=*/false);
  GraphView view(g);
  sssp::SsspScratch scratch;
  sssp::DijkstraOptions opts;
  opts.target = 50;
  sssp::dijkstra_path(view, 0, opts, scratch);
  EXPECT_EQ(scratch.reused_bytes(), 0u);  // first pass built the buffers
  sssp::dijkstra_path(view, 1, opts, scratch);
  const std::size_t per_pass = 100 * (sizeof(weight_t) + sizeof(vid_t));
  EXPECT_EQ(scratch.reused_bytes(), per_pass);
  sssp::dijkstra_path(view, 2, opts, scratch);
  EXPECT_EQ(scratch.reused_bytes(), 2 * per_pass);
}

void expect_same_ksp(const ksp::KspResult& a, const ksp::KspResult& b) {
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (size_t i = 0; i < a.paths.size(); ++i) {
    EXPECT_EQ(a.paths[i].verts, b.paths[i].verts) << "path " << i;
    EXPECT_EQ(a.paths[i].dist, b.paths[i].dist) << "path " << i;
  }
}

TEST(ScratchArena, YenIdenticalWithAndWithoutArena) {
  for (std::uint64_t seed : {41, 42}) {
    auto g = test::random_graph(150, 150 * 8, seed, /*unit=*/false);
    ksp::KspOptions opts;
    opts.k = 6;
    opts.parallel = false;
    opts.scratch_arena = false;
    auto ref = ksp::yen_ksp(g, 0, 100, opts);
    opts.scratch_arena = true;
    auto got = ksp::yen_ksp(g, 0, 100, opts);
    expect_same_ksp(ref, got);
  }
}

TEST(ScratchArena, OptYenIdenticalWithAndWithoutArena) {
  auto g = test::random_graph(150, 150 * 8, 43, /*unit=*/false);
  ksp::KspOptions opts;
  opts.k = 6;
  opts.parallel = false;
  opts.scratch_arena = false;
  auto ref = ksp::optyen_ksp(g, 0, 100, opts);
  opts.scratch_arena = true;
  auto got = ksp::optyen_ksp(g, 0, 100, opts);
  expect_same_ksp(ref, got);
}

}  // namespace
}  // namespace peek
