#include "parallel/sort.hpp"

#include <gtest/gtest.h>

#include <random>

namespace peek::par {
namespace {

TEST(ParallelSort, SortsSmall) {
  std::vector<int> v{5, 3, 8, 1, 9, 2};
  parallel_sort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(ParallelSort, CustomComparator) {
  std::vector<int> v{1, 5, 3};
  parallel_sort(v.begin(), v.end(), std::greater<>{});
  EXPECT_EQ(v, (std::vector<int>{5, 3, 1}));
}

TEST(ParallelSort, EmptyAndSingle) {
  std::vector<int> e;
  parallel_sort(e.begin(), e.end());
  std::vector<int> one{7};
  parallel_sort(one.begin(), one.end());
  EXPECT_EQ(one[0], 7);
}

class SortSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SortSweep, MatchesStdSort) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> d(0, 1);
  std::vector<double> v(GetParam());
  for (auto& x : v) x = d(rng);
  std::vector<double> expect = v;
  std::sort(expect.begin(), expect.end());
  parallel_sort(v.begin(), v.end());
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values(10, 4095, 4096, 4097, 50000,
                                           200000));

TEST(SortPermutation, OrdersKeys) {
  std::vector<double> keys{0.5, 0.1, 0.9, 0.3};
  auto perm = sort_permutation(keys);
  EXPECT_EQ(perm, (std::vector<std::int32_t>{1, 3, 0, 2}));
}

TEST(SortPermutation, DeterministicTieBreak) {
  std::vector<double> keys{1.0, 1.0, 1.0};
  auto perm = sort_permutation(keys);
  EXPECT_EQ(perm, (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(SortPermutation, InfinitiesSortLast) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> keys{inf, 2.0, inf, 1.0};
  auto perm = sort_permutation(keys);
  EXPECT_EQ(perm[0], 3);
  EXPECT_EQ(perm[1], 1);
  EXPECT_EQ(perm[2], 0);  // tie between infs broken by index
  EXPECT_EQ(perm[3], 2);
}

}  // namespace
}  // namespace peek::par
