// Crash-safe persistence end-to-end (DESIGN.md §10): the snapshot container
// format, atomic durable writes with injected mid-write kills, the
// validate-or-quarantine recovery scan, warm restart of the serving layer,
// and checkpoint/restart of the distributed KSP.
//
// The chaos sweep at the bottom is the acceptance harness: ≥200 seeded
// corruptions (truncation, bit flips, torn tails, mid-write kills) driven
// through the exact production load path — every one must end in either a
// bit-identical load or a typed quarantine, and never a crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/peek.hpp"
#include "dist/dist_peek.hpp"
#include "fault/injector.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "recover/artifacts.hpp"
#include "recover/manager.hpp"
#include "recover/snapshot.hpp"
#include "serve/query_engine.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

namespace fs = std::filesystem;

std::int64_t metric(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

// Metric-delta assertions only hold when the hooks are compiled in
// (PEEK_OBS=OFF builds run the same behavior with the accounting elided).
constexpr bool kMetricsOn = obs::kEnabled;

/// Fresh scratch directory under the test temp root.
fs::path scratch_dir(const std::string& name) {
  fs::path dir = fs::path(testing::TempDir()) / ("peek_recover_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Bit-identity: same count, same vertex sequences, same exact distances.
void expect_exact_paths(const std::vector<sssp::Path>& got,
                        const std::vector<sssp::Path>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got[i].verts, want[i].verts);
    EXPECT_EQ(got[i].dist, want[i].dist);  // bit-exact, not approximate
  }
}

class RecoverTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().disable(); }
};

// ----------------------------------------------------------------- xxhash --

TEST(XxHash64, PublishedTestVectors) {
  // Reference values from the canonical xxHash distribution / its Python
  // binding's documentation.
  EXPECT_EQ(recover::xxhash64("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(recover::xxhash64("a", 1), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(recover::xxhash64("abc", 3), 0x44BC2CF5AD770999ULL);
  const char* spam = "Nobody inspects the spammish repetition";
  EXPECT_EQ(recover::xxhash64(spam, std::strlen(spam)),
            0xFBCEA83C8A378BF1ULL);
}

TEST(XxHash64, SeedAndLengthSensitivity) {
  const char buf[64] = "0123456789abcdef0123456789abcdef0123456789abcdef012";
  EXPECT_NE(recover::xxhash64(buf, 40, 0), recover::xxhash64(buf, 40, 1));
  EXPECT_NE(recover::xxhash64(buf, 40), recover::xxhash64(buf, 41));
  char flipped[64];
  std::memcpy(flipped, buf, sizeof buf);
  flipped[37] = static_cast<char>(flipped[37] ^ 0x04);
  EXPECT_NE(recover::xxhash64(buf, 40), recover::xxhash64(flipped, 40));
}

// ------------------------------------------------------------------ codec --

TEST(LittleEndianCodec, RoundTripsAndBoundsChecks) {
  std::vector<std::byte> buf;
  recover::put_u32(buf, 0xDEADBEEFu);
  recover::put_u64(buf, 0x0123456789ABCDEFULL);
  recover::put_i64(buf, -42);
  recover::put_f64(buf, 2.5);
  EXPECT_EQ(buf.size(), 4u + 8 + 8 + 8);
  // Explicit little-endian: the first byte is the lowest-order one.
  EXPECT_EQ(std::to_integer<unsigned>(buf[0]), 0xEFu);

  recover::Cursor cur(buf);
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  std::int64_t c = 0;
  double d = 0;
  ASSERT_TRUE(cur.get_u32(a));
  ASSERT_TRUE(cur.get_u64(b));
  ASSERT_TRUE(cur.get_i64(c));
  ASSERT_TRUE(cur.get_f64(d));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFULL);
  EXPECT_EQ(c, -42);
  EXPECT_EQ(d, 2.5);
  EXPECT_EQ(cur.remaining(), 0u);
  // Over-reads fail without advancing.
  EXPECT_FALSE(cur.get_u32(a));
  EXPECT_EQ(cur.pos, buf.size());
}

// -------------------------------------------------------------- container --

TEST(SnapshotContainer, RoundTripsSections) {
  recover::SnapshotWriter w(recover::kCsrGraph);
  recover::put_u64(w.add_section(7), 1234);
  auto& big = w.add_section(9);
  for (int i = 0; i < 100; ++i) recover::put_f64(big, i * 0.5);
  w.add_section(11);  // empty section is legal

  const auto image = w.serialize();
  auto r = recover::parse_snapshot(image.data(), image.size());
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  EXPECT_EQ(r.snap.kind, static_cast<std::uint32_t>(recover::kCsrGraph));
  ASSERT_EQ(r.snap.sections.size(), 3u);
  ASSERT_NE(r.snap.find(7), nullptr);
  EXPECT_EQ(r.snap.find(7)->bytes.size(), 8u);
  ASSERT_NE(r.snap.find(11), nullptr);
  EXPECT_TRUE(r.snap.find(11)->bytes.empty());
  EXPECT_EQ(r.snap.find(8), nullptr);
}

TEST(SnapshotContainer, RejectsEveryCorruptionWithOffset) {
  recover::SnapshotWriter w(recover::kSsspTree);
  auto& sec = w.add_section(1);
  for (int i = 0; i < 32; ++i) recover::put_u32(sec, static_cast<unsigned>(i));
  const auto image = w.serialize();

  // Truncation at every possible length must be a typed kDataLoss.
  for (size_t cut = 0; cut < image.size(); ++cut) {
    auto r = recover::parse_snapshot(image.data(), cut);
    EXPECT_EQ(r.status.code, fault::Status::kDataLoss) << "cut " << cut;
    EXPECT_LE(r.error_offset, cut);
  }
  // Every single-bit flip must be caught by some checksum.
  for (size_t at = 0; at < image.size(); ++at) {
    auto bad = image;
    bad[at] ^= std::byte{0x20};
    auto r = recover::parse_snapshot(bad.data(), bad.size());
    EXPECT_EQ(r.status.code, fault::Status::kDataLoss) << "flip at " << at;
  }
  // Trailing garbage is rejected even though all checksums pass.
  auto padded = image;
  padded.push_back(std::byte{0});
  auto r = recover::parse_snapshot(padded.data(), padded.size());
  EXPECT_EQ(r.status.code, fault::Status::kDataLoss);
  EXPECT_EQ(r.error_offset, image.size());
}

// ----------------------------------------------------------- atomic write --

TEST_F(RecoverTest, AtomicWritePublishesDurably) {
  const auto dir = scratch_dir("atomic");
  const std::string path = (dir / "x.snap").string();
  recover::SnapshotWriter w(recover::kCsrGraph);
  recover::put_u64(w.add_section(1), 99);
  ASSERT_TRUE(w.write_file(path).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  auto r = recover::load_snapshot_file(path);
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  fs::remove_all(dir);
}

TEST_F(RecoverTest, MidWriteKillsNeverDamageThePublishedFile) {
  const auto dir = scratch_dir("midwrite");
  const std::string path = (dir / "x.snap").string();
  recover::SnapshotWriter w(recover::kCsrGraph);
  auto& sec = w.add_section(1);
  for (int i = 0; i < 64; ++i) recover::put_u64(sec, static_cast<unsigned>(i));
  ASSERT_TRUE(w.write_file(path).ok());
  const std::string original = slurp(path);

  for (const char* site :
       {"recover.write.tear", "recover.write.fsync", "recover.write.rename"}) {
    SCOPED_TRACE(site);
    fault::InjectorConfig fc;
    fc.enabled = true;
    fc.rate_permille = 1000;
    fc.site_filter = site;
    fault::Injector::global().configure(fc);
    EXPECT_FALSE(w.write_file(path).ok());
    fault::Injector::global().disable();
    // The previously published bytes are untouched...
    EXPECT_EQ(slurp(path), original);
    // ...and recovery sweeps whatever tmp debris the "crash" left.
    recover::ScanReport rep;
    recover::RecoveryManager mgr(dir.string());
    auto files = mgr.scan(&rep);
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(rep.quarantined, 0);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
  }
  fs::remove_all(dir);
}

// -------------------------------------------------------------- quarantine --

TEST_F(RecoverTest, ScanQuarantinesCorruptLoadsValidSweepsTmp) {
  const auto dir = scratch_dir("scan");
  const auto g = test::random_graph(24, 96, 5);
  const auto image = recover::encode_graph(g);
  recover::RecoveryManager mgr(dir.string());
  ASSERT_TRUE(
      recover::write_file_atomic(mgr.path_for("good.snap"), image.data(),
                                 image.size())
          .ok());
  // A corrupt sibling: valid image with a flipped payload byte.
  std::string bad(reinterpret_cast<const char*>(image.data()), image.size());
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x01);
  spit(mgr.path_for("bad.snap"), bad);
  // Orphaned tmp debris from a dead writer.
  spit(mgr.path_for("dead.snap.tmp"), "torn");

  const auto loaded_before = metric("recover.snapshots_loaded");
  const auto quarantined_before = metric("recover.quarantined");
  const auto bytes_before = metric("recover.bytes_restored");
  recover::ScanReport rep;
  auto files = mgr.scan(&rep);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].name, "good.snap");
  graph::CsrGraph back;
  ASSERT_TRUE(recover::decode_graph(files[0].snap, back).ok());
  EXPECT_TRUE(back == g);

  EXPECT_EQ(rep.loaded, 1);
  EXPECT_EQ(rep.quarantined, 1);
  EXPECT_EQ(rep.swept_tmp, 1);
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_NE(rep.errors[0].find("bad.snap"), std::string::npos);
  EXPECT_TRUE(fs::exists(mgr.path_for("bad.snap.corrupt")));
  const std::string reason = slurp(mgr.path_for("bad.snap.corrupt.reason"));
  EXPECT_NE(reason.find("data_loss"), std::string::npos);
  EXPECT_FALSE(fs::exists(mgr.path_for("bad.snap")));
  EXPECT_FALSE(fs::exists(mgr.path_for("dead.snap.tmp")));

  if (kMetricsOn) {
    EXPECT_EQ(metric("recover.snapshots_loaded"), loaded_before + 1);
    EXPECT_EQ(metric("recover.quarantined"), quarantined_before + 1);
    EXPECT_GT(metric("recover.bytes_restored"), bytes_before);
  }

  // A second scan is idempotent: quarantine output is never re-chewed.
  recover::ScanReport rep2;
  auto files2 = mgr.scan(&rep2);
  EXPECT_EQ(files2.size(), 1u);
  EXPECT_EQ(rep2.quarantined, 0);
  fs::remove_all(dir);
}

TEST(RecoveryManager, MissingDirectoryIsEmptyNotAnError) {
  recover::RecoveryManager mgr("/nonexistent/peek/snapshots");
  recover::ScanReport rep;
  EXPECT_TRUE(mgr.scan(&rep).empty());
  EXPECT_EQ(rep.loaded, 0);
}

// -------------------------------------------------------------- artifacts --

TEST(Artifacts, GraphFingerprintDistinguishesGraphs) {
  const auto g1 = test::random_graph(40, 160, 1);
  const auto g2 = test::random_graph(40, 160, 2);
  EXPECT_EQ(recover::graph_fingerprint(g1), recover::graph_fingerprint(g1));
  EXPECT_NE(recover::graph_fingerprint(g1), recover::graph_fingerprint(g2));
}

TEST(Artifacts, TreeRoundTrip) {
  const auto g = test::random_graph(40, 160, 3);
  recover::TreeArtifact a;
  a.fingerprint = recover::graph_fingerprint(g);
  a.root = 7;
  a.reverse = true;
  a.tree = sssp::dijkstra(sssp::GraphView(g), 7);
  const auto image = recover::encode_tree(a);
  auto r = recover::parse_snapshot(image.data(), image.size());
  ASSERT_TRUE(r.status.ok()) << r.status.message;
  recover::TreeArtifact b;
  ASSERT_TRUE(recover::decode_tree(r.snap, b).ok());
  EXPECT_EQ(b.fingerprint, a.fingerprint);
  EXPECT_EQ(b.root, 7);
  EXPECT_TRUE(b.reverse);
  EXPECT_EQ(b.tree.dist, a.tree.dist);
  EXPECT_EQ(b.tree.parent, a.tree.parent);
}

// ------------------------------------------------------------ warm restart --

TEST_F(RecoverTest, WarmRestartServesBitIdenticalAnswers) {
  const auto dir = scratch_dir("warm");
  const auto g = test::random_graph(120, 960, 801);
  const vid_t s = 0, t = 60;
  core::PeekOptions po;
  po.k = 3;
  const auto serial3 = core::peek_ksp(g, s, t, po).ksp.paths;
  po.k = 6;
  const auto serial6 = core::peek_ksp(g, s, t, po).ksp.paths;
  ASSERT_EQ(serial6.size(), 6u);

  serve::ServeOptions so;
  so.snapshot_dir = dir.string();
  {
    serve::QueryEngine a(g, so);
    auto r = a.query(s, t, 3);
    ASSERT_EQ(r.status.code, fault::Status::kOk);
    expect_exact_paths(r.paths, serial3);
    EXPECT_GT(a.persist(), 0);
  }

  const auto restore_hits_before = metric("serve.cache.restore_hits");
  serve::QueryEngine b(g, so);
  EXPECT_GT(b.restored_artifacts(), 0);

  // K within the persisted paths: a pure lookup off the restored snapshot.
  auto r3 = b.query(s, t, 3);
  ASSERT_EQ(r3.status.code, fault::Status::kOk);
  EXPECT_TRUE(r3.snapshot_hit);
  expect_exact_paths(r3.paths, serial3);
  if (kMetricsOn) {
    EXPECT_GT(metric("serve.cache.restore_hits"), restore_hits_before);
  }

  // K beyond them: the rebuilt stream (warm-started from the persisted
  // reverse tree) must extend with the exact same tie-breaks.
  auto r6 = b.query(s, t, 6);
  ASSERT_EQ(r6.status.code, fault::Status::kOk);
  expect_exact_paths(r6.paths, serial6);

  // A different target reuses the restored forward tree.
  auto rt = b.query(s, t + 1, 2);
  ASSERT_EQ(rt.status.code, fault::Status::kOk);
  EXPECT_TRUE(rt.fwd_tree_hit);
  po.k = 2;
  expect_exact_paths(rt.paths, core::peek_ksp(g, s, t + 1, po).ksp.paths);
  fs::remove_all(dir);
}

TEST_F(RecoverTest, WarmRestartCanBeDisabled) {
  const auto dir = scratch_dir("cold");
  const auto g = test::random_graph(60, 300, 11);
  serve::ServeOptions so;
  so.snapshot_dir = dir.string();
  {
    serve::QueryEngine a(g, so);
    ASSERT_EQ(a.query(0, 30, 2).status.code, fault::Status::kOk);
    EXPECT_GT(a.persist(), 0);
  }
  so.warm_restart = false;
  serve::QueryEngine b(g, so);
  EXPECT_EQ(b.restored_artifacts(), 0);
  // Still serves correctly, just from scratch.
  core::PeekOptions po;
  po.k = 2;
  expect_exact_paths(b.query(0, 30, 2).paths,
                     core::peek_ksp(g, 0, 30, po).ksp.paths);
  fs::remove_all(dir);
}

TEST_F(RecoverTest, CorruptSnapshotDirQuarantinesAndRecomputes) {
  const auto dir = scratch_dir("corruptdir");
  const auto g = test::random_graph(80, 480, 21);
  serve::ServeOptions so;
  so.snapshot_dir = dir.string();
  {
    serve::QueryEngine a(g, so);
    ASSERT_EQ(a.query(0, 40, 3).status.code, fault::Status::kOk);
    ASSERT_GT(a.persist(), 0);
  }
  // Damage every persisted file.
  int damaged = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    std::string bytes = slurp(e.path().string());
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x40);
    spit(e.path().string(), bytes);
    ++damaged;
  }
  ASSERT_GT(damaged, 0);

  serve::QueryEngine b(g, so);
  EXPECT_EQ(b.restored_artifacts(), 0);
  int corrupt_files = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().string().ends_with(".corrupt")) ++corrupt_files;
  EXPECT_EQ(corrupt_files, damaged);
  // The engine recomputes and still answers correctly.
  core::PeekOptions po;
  po.k = 3;
  auto r = b.query(0, 40, 3);
  ASSERT_EQ(r.status.code, fault::Status::kOk);
  expect_exact_paths(r.paths, core::peek_ksp(g, 0, 40, po).ksp.paths);
  fs::remove_all(dir);
}

TEST_F(RecoverTest, StaleFingerprintIsSkippedNotQuarantined) {
  const auto dir = scratch_dir("stale");
  const auto g1 = test::random_graph(60, 300, 31);
  const auto g2 = test::random_graph(60, 300, 32);
  serve::ServeOptions so;
  so.snapshot_dir = dir.string();
  {
    serve::QueryEngine a(g1, so);
    ASSERT_EQ(a.query(0, 30, 2).status.code, fault::Status::kOk);
    ASSERT_GT(a.persist(), 0);
  }
  serve::QueryEngine b(g2, so);
  EXPECT_EQ(b.restored_artifacts(), 0);
  // Staleness is not corruption: the files stay in place, unquarantined.
  for (const auto& e : fs::directory_iterator(dir))
    EXPECT_FALSE(e.path().string().ends_with(".corrupt"))
        << e.path().string();
  fs::remove_all(dir);
}

// ---------------------------------------------------------- dist restart --

TEST_F(RecoverTest, DistCheckpointResumesAndMatchesSerial) {
  const auto dir = scratch_dir("dist");
  const auto g = test::random_graph(120, 960, 801);
  const vid_t s = 0, t = 60;
  const int k = 8, ranks = 3;
  core::PeekOptions po;
  po.k = k;
  const auto serial = core::peek_ksp(g, s, t, po).ksp.paths;

  std::vector<std::vector<sssp::Path>> per_rank(ranks);
  dist::run_ranks(ranks, [&](dist::Comm& c) {
    dist::DistPeekOptions opts;
    opts.k = k;
    opts.checkpoint_dir = dir.string();
    per_rank[static_cast<size_t>(c.rank())] =
        dist_peek_ksp(c, g, s, t, opts).ksp.paths;
  });
  for (int r = 0; r < ranks; ++r) {
    SCOPED_TRACE(r);
    test::expect_same_distances(serial, per_rank[static_cast<size_t>(r)]);
  }
  for (int r = 0; r < ranks; ++r)
    EXPECT_TRUE(
        fs::exists(dir / ("rank_" + std::to_string(r) + ".ckpt")));

  // Re-running resumes from the final checkpoints instead of recomputing
  // the KSP stage, and the answer is unchanged.
  const auto restarts_before = metric("dist.rank_restarts");
  dist::run_ranks(ranks, [&](dist::Comm& c) {
    dist::DistPeekOptions opts;
    opts.k = k;
    opts.checkpoint_dir = dir.string();
    auto got = dist_peek_ksp(c, g, s, t, opts).ksp.paths;
    test::expect_same_distances(serial, got);
  });
  if (kMetricsOn) {
    EXPECT_GE(metric("dist.rank_restarts"), restarts_before + ranks);
  }
  fs::remove_all(dir);
}

TEST_F(RecoverTest, DistInjectedRankFailureMatchesSerial) {
  const auto dir = scratch_dir("rankfail");
  const auto g = test::random_graph(120, 960, 801);
  const vid_t s = 0, t = 60;
  const int k = 8, ranks = 3;
  core::PeekOptions po;
  po.k = k;
  const auto serial = core::peek_ksp(g, s, t, po).ksp.paths;

  fault::InjectorConfig fc;
  fc.enabled = true;
  fc.seed = 7;
  fc.rate_permille = 400;
  fc.site_filter = "dist.rank_fail";
  fault::Injector::global().configure(fc);
  const auto restarts_before = metric("dist.rank_restarts");
  std::vector<std::vector<sssp::Path>> per_rank(ranks);
  dist::run_ranks(ranks, [&](dist::Comm& c) {
    dist::DistPeekOptions opts;
    opts.k = k;
    opts.checkpoint_dir = dir.string();
    per_rank[static_cast<size_t>(c.rank())] =
        dist_peek_ksp(c, g, s, t, opts).ksp.paths;
  });
  const auto fired = fault::Injector::global().total_fired();
  fault::Injector::global().disable();

  EXPECT_GT(fired, 0);
  if (kMetricsOn) {
    EXPECT_GT(metric("dist.rank_restarts"), restarts_before);
  }
  for (int r = 0; r < ranks; ++r) {
    SCOPED_TRACE(r);
    test::expect_same_distances(serial, per_rank[static_cast<size_t>(r)]);
  }
  test::check_ksp_invariants(g, s, t, per_rank[0]);
  fs::remove_all(dir);
}

// ------------------------------------------------------------ chaos sweep --

/// 60 seeds × 4 corruption kinds = 240 seeded corruption events, all driven
/// through the production scan path. PEEK_FAULT_SEED (when set, e.g. by the
/// CI chaos job) offsets the seed range so different CI shards explore
/// different corruption points.
TEST_F(RecoverTest, ChaosSweepLoadsOrQuarantinesEverySeed) {
  const auto g = test::random_graph(32, 128, 99);
  const auto image = recover::encode_graph(g);
  std::uint64_t base = 0;
  if (const char* env = std::getenv("PEEK_FAULT_SEED"))
    base = std::strtoull(env, nullptr, 10) * 1000;

  int corruptions = 0, quarantines = 0, survivals = 0;
  for (std::uint64_t seed = base; seed < base + 60; ++seed) {
    for (int kind = 0; kind < 4; ++kind) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " kind " +
                   std::to_string(kind));
      const auto dir = scratch_dir("chaos");
      recover::RecoveryManager mgr(dir.string());
      const std::string file = mgr.path_for("graph.snap");
      ASSERT_TRUE(
          recover::write_file_atomic(file, image.data(), image.size()).ok());

      std::uint64_t rng = (seed + 1) * 6364136223846793005ULL +
                          static_cast<std::uint64_t>(kind);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      bool damaged = true;
      std::string bytes = slurp(file);
      ASSERT_EQ(bytes.size(), image.size());
      switch (kind) {
        case 0: {  // truncation
          bytes.resize(next() % bytes.size());
          spit(file, bytes);
          break;
        }
        case 1: {  // single bit flip
          const size_t at = next() % bytes.size();
          bytes[at] = static_cast<char>(bytes[at] ^ (1u << (next() % 8)));
          spit(file, bytes);
          break;
        }
        case 2: {  // torn tail: the last T bytes scribbled, size unchanged
          const size_t tail = 1 + next() % (bytes.size() / 2);
          for (size_t i = 0; i < tail; ++i)
            bytes[bytes.size() - 1 - i] =
                static_cast<char>(bytes[bytes.size() - 1 - i] ^ 0x5A);
          spit(file, bytes);
          break;
        }
        case 3: {  // mid-write kill: a re-publish dies at a random step
          static const char* kSites[3] = {"recover.write.tear",
                                          "recover.write.fsync",
                                          "recover.write.rename"};
          fault::InjectorConfig fc;
          fc.enabled = true;
          fc.seed = seed;
          fc.rate_permille = 1000;
          fc.site_filter = kSites[next() % 3];
          fault::Injector::global().configure(fc);
          EXPECT_FALSE(
              recover::write_file_atomic(file, image.data(), image.size())
                  .ok());
          fault::Injector::global().disable();
          damaged = false;  // the published file must have survived the kill
          break;
        }
      }
      ++corruptions;

      recover::ScanReport rep;
      auto files = mgr.scan(&rep);  // must never throw, whatever the damage
      if (damaged) {
        ASSERT_TRUE(files.empty());
        ASSERT_EQ(rep.quarantined, 1);
        ASSERT_TRUE(fs::exists(file + ".corrupt"));
        ASSERT_TRUE(fs::exists(file + ".corrupt.reason"));
        EXPECT_NE(slurp(file + ".corrupt.reason").find("data_loss"),
                  std::string::npos);
        ++quarantines;
      } else {
        ASSERT_EQ(files.size(), 1u);
        ASSERT_EQ(rep.quarantined, 0);
        graph::CsrGraph back;
        ASSERT_TRUE(recover::decode_graph(files[0].snap, back).ok());
        ASSERT_TRUE(back == g);  // bit-identical load
        ++survivals;
      }
      fs::remove_all(dir);
    }
  }
  EXPECT_GE(corruptions, 200);
  EXPECT_EQ(quarantines, 180);  // kinds 0-2 always damage
  EXPECT_EQ(survivals, 60);     // kind 3 never damages the published file
}

}  // namespace
}  // namespace peek
