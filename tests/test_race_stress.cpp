// Race-stress suite: hammers every piece of shared-mutable state in the
// library from many threads at once. The assertions double as correctness
// checks, but the real consumer is the PEEK_SANITIZE=thread build (see
// .github/workflows/ci.yml): under that flavor the parallel wrappers run on
// fork/join std::threads, which ThreadSanitizer models exactly, so any data
// race in these code paths — the Δ-stepping relaxation atomics, the
// task-parallel deviation engine, the sharded metrics registry, the lazy CSR
// transpose, the artifact cache and the query engine's coalescing — is
// reported with zero false positives.
//
// Sized for a TSan slowdown of ~10x on a small CI runner: graphs of a few
// hundred vertices, tens of queries per thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "check/invariants.hpp"
#include "fault/cancel.hpp"
#include "core/batch.hpp"
#include "core/peek.hpp"
#include "graph/csr.hpp"
#include "ksp/optyen.hpp"
#include "ksp/yen.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/prefix_sum.hpp"
#include "parallel/sort.hpp"
#include "serve/query_engine.hpp"
#include "shard/fleet.hpp"
#include "shard/health.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

// Every stress point below runs at least this many OS threads (the ISSUE's
// acceptance bar is >= 8).
constexpr int kThreads = 8;

/// Runs `fn(thread_index)` on kThreads std::threads and joins them.
template <typename Fn>
void run_threads(Fn&& fn, int threads = kThreads) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) pool.emplace_back([&fn, w] { fn(w); });
  for (auto& th : pool) th.join();
}

// ------------------------------------------------------------ parallel_for

TEST(RaceStressParallelFor, ConcurrentRegionsOverSharedAtomics) {
  par::ThreadScope scope(kThreads);
  constexpr int kIters = 2000;
  std::vector<std::atomic<std::int64_t>> cells(16);
  for (auto& c : cells) c.store(0, std::memory_order_relaxed);

  // Each driver thread opens its own parallel region over the shared cells:
  // regions race against regions, exactly the serving-layer shape.
  run_threads([&](int) {
    par::parallel_for(0, kIters, [&](int i) {
      cells[static_cast<size_t>(i) % cells.size()].fetch_add(
          1, std::memory_order_relaxed);
    });
    par::parallel_for_dynamic(0, kIters, [&](int i) {
      cells[static_cast<size_t>(i) % cells.size()].fetch_add(
          1, std::memory_order_relaxed);
    });
  });

  std::int64_t total = 0;
  for (auto& c : cells) total += c.load(std::memory_order_relaxed);
  EXPECT_EQ(total, static_cast<std::int64_t>(kThreads) * 2 * kIters);

  const std::int64_t odd =
      par::parallel_count(0, kIters, [](int i) { return i % 2 == 1; });
  EXPECT_EQ(odd, kIters / 2);
}

TEST(RaceStressParallelFor, ThreadIdStaysInsideWorkerRange) {
  par::ThreadScope scope(kThreads);
  const int nt = par::max_threads();
  std::vector<std::atomic<int>> hits(static_cast<size_t>(nt));
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  par::parallel_for_dynamic(0, 4096, [&](int) {
    const int id = par::thread_id();
    ASSERT_GE(id, 0);
    ASSERT_LT(id, nt);
    hits[static_cast<size_t>(id)].fetch_add(1, std::memory_order_relaxed);
  });
  std::int64_t total = 0;
  for (auto& h : hits) total += h.load(std::memory_order_relaxed);
  EXPECT_EQ(total, 4096);
}

TEST(RaceStressParallelFor, ConcurrentSortsAndScans) {
  par::ThreadScope scope(kThreads);
  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) + 1);
    std::vector<double> keys(5000);
    for (auto& k : keys)
      k = std::uniform_real_distribution<double>(0, 1)(rng);
    const auto perm = par::sort_permutation(keys);
    for (size_t i = 1; i < perm.size(); ++i) {
      ASSERT_LE(keys[static_cast<size_t>(perm[i - 1])],
                keys[static_cast<size_t>(perm[i])]);
    }
    std::vector<std::int64_t> in(3000, 1);
    const auto out = par::inclusive_prefix_sum(in);
    ASSERT_EQ(out.back(), static_cast<std::int64_t>(in.size()));
  });
}

// ------------------------------------------------------------ graph / CSR

TEST(RaceStressCsr, ConcurrentLazyTransposeWarmup) {
  // The transpose is built lazily behind call_once; racing first calls used
  // to be a double-checked-lock data race.
  for (int round = 0; round < 4; ++round) {
    const auto g = test::random_graph(400, 3000, 100 + round);
    ASSERT_TRUE(check::validate_csr(g));
    std::vector<const graph::CsrGraph*> seen(kThreads, nullptr);
    run_threads([&](int w) {
      seen[static_cast<size_t>(w)] = &g.reverse();
    });
    for (int w = 1; w < kThreads; ++w) EXPECT_EQ(seen[0], seen[w]);
    std::string why;
    EXPECT_TRUE(check::validate_csr(*seen[0], &why)) << why;
    EXPECT_EQ(seen[0]->num_edges(), g.num_edges());
  }
}

// ------------------------------------------------------------ Δ-stepping

TEST(RaceStressDeltaStepping, ConcurrentParallelRunsMatchDijkstra) {
  par::ThreadScope scope(kThreads);
  const auto g = test::random_graph(500, 4000, 7);
  g.warm_reverse();
  const sssp::GraphView view(g);

  // Reference distances for the sources each thread will use.
  std::vector<sssp::SsspResult> want(kThreads);
  for (int w = 0; w < kThreads; ++w)
    want[static_cast<size_t>(w)] =
        sssp::dijkstra(view, static_cast<vid_t>(w * 17 % g.num_vertices()));

  run_threads([&](int w) {
    const auto src = static_cast<vid_t>(w * 17 % g.num_vertices());
    for (int rep = 0; rep < 3; ++rep) {
      sssp::DeltaSteppingOptions opts;
      opts.parallel = true;
      const auto got = sssp::delta_stepping(view, src, opts);
      const auto& ref = want[static_cast<size_t>(w)];
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        if (ref.dist[v] == kInfDist) {
          ASSERT_EQ(got.dist[v], kInfDist) << "v=" << v;
        } else {
          ASSERT_NEAR(got.dist[v], ref.dist[v], 1e-9) << "v=" << v;
        }
      }
    }
  });
}

// ------------------------------------------------------------ KSP engines

TEST(RaceStressKsp, ConcurrentTaskParallelOptYen) {
  par::ThreadScope scope(kThreads);
  const auto g = test::random_graph(300, 2400, 21);
  g.warm_reverse();
  const auto bi = sssp::BiView::of(g);
  const vid_t s = 3, t = 250;

  ksp::KspOptions serial_opts;
  serial_opts.k = 6;
  const auto want = ksp::yen_ksp(g, s, t, serial_opts);

  run_threads([&](int) {
    ksp::KspOptions opts;
    opts.k = 6;
    opts.parallel = true;  // task-parallel deviations (§6.1)
    const auto got = ksp::optyen_ksp(bi, s, t, opts);
    ASSERT_EQ(got.paths.size(), want.paths.size());
    for (size_t i = 0; i < got.paths.size(); ++i)
      ASSERT_NEAR(got.paths[i].dist, want.paths[i].dist, 1e-9) << i;
  });
}

TEST(RaceStressKsp, ParallelBatchSharedTranspose) {
  par::ThreadScope scope(kThreads);
  const auto g = test::random_graph(300, 2400, 33);
  std::vector<core::BatchQuery> queries;
  for (vid_t s = 0; s < 12; ++s)
    queries.push_back({s, static_cast<vid_t>(280 + (s % 8))});
  core::BatchOptions opts;
  opts.parallel_queries = true;
  opts.per_query.k = 4;
  const auto parallel_out = core::peek_ksp_batch(g, queries, opts);
  opts.parallel_queries = false;
  const auto serial_out = core::peek_ksp_batch(g, queries, opts);
  ASSERT_EQ(parallel_out.results.size(), serial_out.results.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& a = parallel_out.results[i].ksp.paths;
    const auto& b = serial_out.results[i].ksp.paths;
    ASSERT_EQ(a.size(), b.size()) << i;
    for (size_t j = 0; j < a.size(); ++j)
      ASSERT_NEAR(a[j].dist, b[j].dist, 1e-9) << i << "/" << j;
  }
}

// ------------------------------------------------------------ obs/metrics

TEST(RaceStressMetrics, ShardedCountersSumExactly) {
  constexpr int kPerThread = 20000;
  auto& reg = obs::MetricsRegistry::global();
  auto& counter = reg.counter("race_stress.counter");
  counter.reset();
  run_threads([&](int) {
    for (int i = 0; i < kPerThread; ++i) counter.inc();
  });
  EXPECT_EQ(counter.value(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
  counter.reset();
}

TEST(RaceStressMetrics, HooksRegistrationSnapshotAndResetChurn) {
  auto& reg = obs::MetricsRegistry::global();
  std::atomic<bool> stop{false};
  // One thread snapshots and resets while the rest register + update through
  // the same macros the pipeline uses (function-local static registration).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = reg.snapshot();
      (void)snap;
    }
  });
  run_threads([&](int w) {
    for (int i = 0; i < 3000; ++i) {
      PEEK_COUNT_INC("race_stress.hook_counter");
      PEEK_COUNT_ADD("race_stress.hook_added", 2);
      PEEK_GAUGE_SET("race_stress.gauge", w);
      PEEK_TIMER_SCOPE("race_stress.span");
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();
#if PEEK_OBS_ENABLED
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.count("race_stress.hook_counter"));
  EXPECT_EQ(snap.counters.at("race_stress.hook_counter"),
            static_cast<std::int64_t>(kThreads) * 3000);
  EXPECT_EQ(snap.timers.at("race_stress.span").count,
            static_cast<std::uint64_t>(kThreads) * 3000);
#endif
  reg.reset();
}

// ------------------------------------------------------------ artifact cache

TEST(RaceStressArtifactCache, PutGetEvictionChurn) {
  serve::ArtifactCache::Options opts;
  opts.byte_budget = 64 << 10;  // tiny: constant eviction under churn
  opts.shards = 4;
  serve::ArtifactCache cache(opts);

  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) * 7 + 1);
    std::uniform_int_distribution<vid_t> key(0, 63);
    for (int i = 0; i < 400; ++i) {
      const vid_t v = key(rng);
      const auto kind = (v % 2 == 0) ? serve::ArtifactKind::kForwardTree
                                     : serve::ArtifactKind::kReverseTree;
      if (i % 3 == 0) {
        auto tree = std::make_shared<sssp::SsspResult>();
        tree->dist.assign(64 + static_cast<size_t>(v), 1.0);
        tree->parent.assign(64 + static_cast<size_t>(v), kNoVertex);
        cache.put_tree(kind, v, tree, /*generation=*/0);
      } else if (auto hit = cache.get_tree(kind, v, 0)) {
        // Entries are immutable once cached; a hit must be structurally
        // sound even while other threads evict around it.
        ASSERT_EQ(hit->dist.size(), hit->parent.size());
      }
      if (i % 64 == 0) (void)cache.stats();
    }
  });

  const auto stats = cache.stats();
  EXPECT_LE(stats.bytes_used, opts.byte_budget);
}

// ------------------------------------------------------------ query engine

/// Serial ground truth for a pool of queries.
std::map<std::pair<vid_t, vid_t>, std::vector<sssp::Path>> reference_answers(
    const graph::CsrGraph& g, const std::vector<std::pair<vid_t, vid_t>>& pool,
    int k) {
  std::map<std::pair<vid_t, vid_t>, std::vector<sssp::Path>> ref;
  for (const auto& [s, t] : pool) {
    core::PeekOptions po;
    po.k = k;
    ref[{s, t}] = core::peek_ksp(g, s, t, po).ksp.paths;
  }
  return ref;
}

void expect_prefix_of(const std::vector<sssp::Path>& got,
                      const std::vector<sssp::Path>& want, int k) {
  const size_t expect_n =
      std::min(static_cast<size_t>(k), want.size());
  ASSERT_EQ(got.size(), expect_n);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].verts, want[i].verts) << "path " << i;
    ASSERT_EQ(got[i].dist, want[i].dist) << "path " << i;
  }
}

TEST(RaceStressQueryEngine, ConcurrentMixedPoolBitIdentical) {
  const auto g = test::random_graph(400, 3600, 55);
  std::vector<std::pair<vid_t, vid_t>> pool;
  for (vid_t i = 0; i < 10; ++i)
    pool.emplace_back(i, static_cast<vid_t>(350 + i % 6));
  constexpr int kMaxK = 8;
  const auto ref = reference_answers(g, pool, kMaxK);

  serve::ServeOptions so;
  so.cache.byte_budget = 1 << 20;  // small enough to evict under churn
  so.cache.shards = 4;
  so.k_budget_floor = kMaxK;
  serve::QueryEngine engine(g, so);

  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) * 131 + 7);
    std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
    std::uniform_int_distribution<int> pick_k(1, kMaxK);
    for (int i = 0; i < 30; ++i) {
      const auto [s, t] = pool[pick(rng)];
      const int k = pick_k(rng);
      const auto out = engine.query(s, t, k);
      expect_prefix_of(out.paths, ref.at({s, t}), k);
    }
  });

  const auto stats = engine.cache().stats();
  EXPECT_LE(stats.bytes_used, so.cache.byte_budget);
}

TEST(RaceStressQueryEngine, CoalescingSingleHotPairUnderInvalidation) {
  const auto g = test::random_graph(350, 3000, 77);
  const vid_t s = 2, t = 333;
  constexpr int kMaxK = 6;
  core::PeekOptions po;
  po.k = kMaxK;
  const auto want = core::peek_ksp(g, s, t, po).ksp.paths;

  serve::ServeOptions so;
  so.k_budget_floor = kMaxK;
  serve::QueryEngine engine(g, so);

  // All threads hammer the same (s, t) — maximal coalescing pressure — while
  // one of them periodically invalidates, forcing fresh computations whose
  // waiters must still get correct answers.
  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) + 3);
    std::uniform_int_distribution<int> pick_k(1, kMaxK);
    for (int i = 0; i < 25; ++i) {
      if (w == 0 && i % 8 == 4) engine.invalidate();
      const int k = pick_k(rng);
      const auto out = engine.query(s, t, k);
      expect_prefix_of(out.paths, want, k);
    }
  });
}

TEST(RaceStressQueryEngine, EvictionChurnWithSnapshotValidation) {
  const auto g = test::random_graph(300, 2400, 99);
  std::vector<std::pair<vid_t, vid_t>> pool;
  for (vid_t i = 0; i < 24; ++i)  // more pairs than the tiny cache can hold
    pool.emplace_back(i, static_cast<vid_t>(250 + i % 12));
  constexpr int kMaxK = 4;
  const auto ref = reference_answers(g, pool, kMaxK);

  serve::ServeOptions so;
  so.cache.byte_budget = 96 << 10;  // forces continuous snapshot eviction
  so.cache.shards = 2;
  so.k_budget_floor = kMaxK;
  serve::QueryEngine engine(g, so);

  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) * 17 + 5);
    std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
    for (int i = 0; i < 25; ++i) {
      const auto [s, t] = pool[pick(rng)];
      const auto out = engine.query(s, t, kMaxK);
      expect_prefix_of(out.paths, ref.at({s, t}), kMaxK);
      // The debug-only CSR validator doubles as a published-state probe:
      // any snapshot currently in cache must hold a structurally valid
      // compacted graph even mid-churn.
      if (auto snap = engine.cache().get_snapshot(s, t, engine.generation());
          snap && snap->graph) {
        std::string why;
        ASSERT_TRUE(check::validate_csr(*snap->graph, &why)) << why;
      }
    }
  });
}

TEST(RaceStressQueryEngine, MidFlightCancellationLeavesNoDebris) {
  // Cancelled, deadline-capped, and normal queries interleave on the same
  // engine. The contract under TSan: no race, no leaked in-flight entry, and
  // every answer — partial or complete — is an exact prefix of the fresh
  // core::peek_ksp result for its pair.
  const auto g = test::random_graph(400, 3600, 123);
  std::vector<std::pair<vid_t, vid_t>> pool;
  for (vid_t i = 0; i < 8; ++i)
    pool.emplace_back(i, static_cast<vid_t>(350 + i % 6));
  constexpr int kMaxK = 6;
  const auto ref = reference_answers(g, pool, kMaxK);

  const auto expect_exact_prefix = [](const std::vector<sssp::Path>& got,
                                      const std::vector<sssp::Path>& want) {
    ASSERT_LE(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].verts, want[i].verts) << "path " << i;
      ASSERT_EQ(got[i].dist, want[i].dist) << "path " << i;
    }
  };

  serve::ServeOptions so;
  so.k_budget_floor = kMaxK;
  serve::QueryEngine engine(g, so);

  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) * 91 + 17);
    std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
    for (int i = 0; i < 18; ++i) {
      const auto [s, t] = pool[pick(rng)];
      const auto& want = ref.at({s, t});
      switch (i % 3) {
        case 0: {  // un-cancelled: must stay bit-identical under the storm
          const auto out = engine.query(s, t, kMaxK);
          ASSERT_TRUE(out.status.ok());
          expect_prefix_of(out.paths, want, kMaxK);
          break;
        }
        case 1: {  // token cancelled from a second thread mid-flight
          auto tok = fault::CancelToken::cancellable();
          std::thread killer([&tok] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            tok.cancel();
          });
          serve::QueryOptions qo;
          qo.cancel = &tok;
          const auto out = engine.query(s, t, kMaxK, qo);
          killer.join();
          if (out.status.ok()) {
            expect_prefix_of(out.paths, want, kMaxK);
          } else {
            ASSERT_EQ(out.status.code, fault::Status::kCancelled);
            expect_exact_prefix(out.paths, want);
          }
          break;
        }
        default: {  // microscopic deadline: typed trip, exact partial answer
          serve::QueryOptions qo;
          qo.deadline = std::chrono::milliseconds(1);
          const auto out = engine.query(s, t, kMaxK, qo);
          if (out.status.ok()) {
            expect_prefix_of(out.paths, want, kMaxK);
          } else {
            ASSERT_EQ(out.status.code, fault::Status::kDeadlineExceeded);
            expect_exact_prefix(out.paths, want);
          }
          break;
        }
      }
    }
  });

  // No debris: the coalescing map drained and every admission slot returned.
  EXPECT_EQ(engine.inflight_entries(), 0u);
  EXPECT_EQ(engine.admitted_now(), 0);
  // The cache survived the cancellation storm: every pair still answers
  // exactly on a quiet engine.
  for (const auto& [key, want] : ref) {
    const auto out = engine.query(key.first, key.second, kMaxK);
    ASSERT_TRUE(out.status.ok());
    expect_prefix_of(out.paths, want, kMaxK);
  }
}

TEST(RaceStressQueryEngine, ParallelPipelineUnderConcurrentCallers) {
  // opts.peek.parallel = true: the engine's misses run the parallel pipeline
  // (Δ-stepping + task-parallel deviations) while the callers themselves are
  // std::threads — both levels of concurrency at once.
  par::ThreadScope scope(kThreads);
  const auto g = test::random_graph(250, 2000, 11);
  std::vector<std::pair<vid_t, vid_t>> pool;
  for (vid_t i = 0; i < 6; ++i)
    pool.emplace_back(i, static_cast<vid_t>(200 + i));
  constexpr int kMaxK = 4;
  const auto ref = reference_answers(g, pool, kMaxK);

  serve::ServeOptions so;
  so.peek.parallel = true;
  so.k_budget_floor = kMaxK;
  serve::QueryEngine engine(g, so);

  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) + 41);
    std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
    for (int i = 0; i < 8; ++i) {
      const auto [s, t] = pool[pick(rng)];
      const auto out = engine.query(s, t, kMaxK);
      expect_prefix_of(out.paths, ref.at({s, t}), kMaxK);
    }
  });
}

// ------------------------------------------------------------ breakers

TEST(RaceStressBreaker, AdmitRecordProbeFromManyThreads) {
  // Hammer one ReplicaBreaker's whole surface from kThreads threads: the
  // admission path, health recording with mixed signals, probe completions,
  // and operator force-open/close — TSan models every transition edge.
  shard::HealthOptions ho;
  ho.min_samples = 4;
  // Zero cooldown: a tripped breaker is immediately probe-eligible, so the
  // microsecond-scale storm exercises open -> half-open -> close edges.
  ho.cooldown = std::chrono::milliseconds(0);
  ho.probe_budget = 2;
  shard::ReplicaBreaker breaker(ho);
  std::atomic<long> probes{0};
  run_threads([&](int w) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(w) + 97);
    std::uniform_int_distribution<int> coin(0, 99);
    for (int i = 0; i < 400; ++i) {
      const auto adm = breaker.admit();
      if (adm == shard::ReplicaBreaker::Admission::kProbe) {
        ++probes;
        breaker.probe_done(coin(rng) < 50
                               ? shard::ReplicaBreaker::ProbeOutcome::kSuccess
                               : shard::ReplicaBreaker::ProbeOutcome::kFailure);
      }
      shard::HealthSignal sig;
      sig.ok = coin(rng) < 55;  // hover near the trip threshold
      sig.error = !sig.ok;
      breaker.record(sig);
      if (coin(rng) == 0) breaker.force_open();
      if (coin(rng) == 1) breaker.force_close();
      // Invariants that must hold at every interleaving.
      const double h = breaker.health();
      ASSERT_GE(h, 0.0);
      ASSERT_LE(h, 1.0);
    }
  });
  // The storm must actually have exercised the half-open path.
  EXPECT_GT(probes.load(), 0);
  breaker.force_close();
  EXPECT_EQ(breaker.state(), shard::BreakerState::kClosed);
}

TEST(RaceStressBreaker, FleetStormWithChaosTogglesStaysTyped) {
  // The §14 state machine under real traffic: concurrent fleet queries with
  // injected bounces and stalls, while a chaos thread force-opens and
  // force-closes replicas. Every result must be typed and every non-degraded
  // kOk answer exact; breakers trip, half-open and close concurrently.
  const auto g = test::random_graph(300, 2400, 23);
  std::vector<std::pair<vid_t, vid_t>> pool;
  for (vid_t i = 0; i < 6; ++i)
    pool.emplace_back(i, static_cast<vid_t>(250 + i));
  constexpr int kMaxK = 4;
  const auto ref = reference_answers(g, pool, kMaxK);

  shard::FleetOptions fo;
  fo.router.shards = 2;
  fo.replicas = 2;
  fo.workers_per_replica = 2;
  fo.hedge = std::chrono::milliseconds(1);
  fo.health.cooldown = std::chrono::milliseconds(5);
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = 17;
  inj.rate_permille = 150;
  inj.stall = std::chrono::milliseconds(1);
  inj.site_filter = "shard.replica.down,shard.replica.stall";
  fo.injector = inj;
  {
    shard::ShardFleet fleet(g, fo);
    std::atomic<bool> stop{false};
    std::thread chaos([&] {
      std::mt19937_64 rng(5);
      std::uniform_int_distribution<int> sh(0, fleet.shards() - 1);
      std::uniform_int_distribution<int> rep(0, fleet.replicas() - 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const int a = sh(rng), b = rep(rng);
        fleet.set_replica_down(a, b, true);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        fleet.set_replica_down(a, b, false);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    run_threads([&](int w) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(w) + 3);
      std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
      for (int i = 0; i < 20; ++i) {
        const auto [s, t] = pool[pick(rng)];
        const auto r = fleet.query(s, t, kMaxK);
        const auto code = r.result.status.code;
        ASSERT_TRUE(code == fault::Status::kOk ||
                    code == fault::Status::kOverloaded ||
                    code == fault::Status::kDeadlineExceeded)
            << fault::to_string(code);
        if (code == fault::Status::kOk && !r.result.degraded) {
          const auto& want = ref.at({s, t});
          ASSERT_EQ(r.result.paths.size(), want.size());
          for (size_t p = 0; p < want.size(); ++p) {
            ASSERT_EQ(r.result.paths[p].verts, want[p].verts);
            ASSERT_EQ(r.result.paths[p].dist, want[p].dist);
          }
        }
      }
    });
    stop.store(true);
    chaos.join();
    // Chaos off: the fleet converges back to full health on its own.
    fault::Injector::global().disable();
    for (int sh = 0; sh < fleet.shards(); ++sh)
      for (int rp = 0; rp < fleet.replicas(); ++rp)
        fleet.set_replica_down(sh, rp, false);
    bool all_closed = false;
    for (int i = 0; i < 500 && !all_closed; ++i) {
      for (const auto& [s, t] : pool) fleet.query(s, t, kMaxK);
      all_closed = true;
      for (int sh = 0; sh < fleet.shards(); ++sh)
        for (int rp = 0; rp < fleet.replicas(); ++rp)
          all_closed = all_closed && fleet.breaker_state(sh, rp) ==
                                         shard::BreakerState::kClosed;
      if (!all_closed) std::this_thread::sleep_for(
          std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(all_closed);
  }
  fault::Injector::global().disable();
}

}  // namespace
}  // namespace peek
