#include "sssp/resumable_dijkstra.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_util.hpp"

namespace peek::sssp {
namespace {

TEST(ResumableDijkstra, FullRunMatchesDijkstra) {
  auto g = test::random_graph(150, 900, 31);
  GraphView view(g);
  ResumableDijkstra rd(view, 0);
  rd.run_to_completion();
  auto ref = dijkstra(view, 0);
  for (vid_t v = 0; v < 150; ++v) {
    if (ref.dist[v] == kInfDist) EXPECT_EQ(rd.dist(v), kInfDist);
    else EXPECT_NEAR(rd.dist(v), ref.dist[v], 1e-9);
  }
}

TEST(ResumableDijkstra, EnsureSettledIsIncremental) {
  auto g = graph::path(10, {graph::WeightKind::kUnit, 1});
  GraphView view(g);
  ResumableDijkstra rd(view, 0);
  EXPECT_FALSE(rd.settled(5));
  EXPECT_DOUBLE_EQ(rd.ensure_settled(5), 5.0);
  EXPECT_TRUE(rd.settled(5));
  // Vertices past 5 not yet settled (plus heap laziness tolerance of 1).
  EXPECT_FALSE(rd.settled(8));
  EXPECT_DOUBLE_EQ(rd.ensure_settled(9), 9.0);
}

TEST(ResumableDijkstra, EnsureSettledOnUnreachableDrainsHeap) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}});
  GraphView view(g);
  ResumableDijkstra rd(view, 0);
  EXPECT_EQ(rd.ensure_settled(2), kInfDist);
}

TEST(ResumableDijkstra, RepairSeededMatchesFreshWithBans) {
  // The SB* trick: recompute with one more banned vertex by repairing the
  // old tree. Must agree exactly with a from-scratch banned Dijkstra.
  auto g = test::random_graph(120, 960, 37);
  GraphView view(g);
  auto base = dijkstra(view, 0);
  for (vid_t banned_v = 1; banned_v < 20; ++banned_v) {
    std::vector<std::uint8_t> mask(120, 0);
    mask[banned_v] = 1;
    Bans bans{mask.data(), nullptr};
    ResumableDijkstra repaired(view, 0, base, bans);
    repaired.run_to_completion();
    DijkstraOptions opts;
    opts.bans = bans;
    auto fresh = dijkstra(view, 0, opts);
    for (vid_t v = 0; v < 120; ++v) {
      if (fresh.dist[v] == kInfDist) {
        EXPECT_EQ(repaired.dist(v), kInfDist) << "ban " << banned_v << " v " << v;
      } else {
        EXPECT_NEAR(repaired.dist(v), fresh.dist[v], 1e-9)
            << "ban " << banned_v << " v " << v;
      }
    }
  }
}

TEST(ResumableDijkstra, RepairWithGrowingBanSet) {
  // Chain of repairs mirroring SB*'s prefix growth.
  auto g = test::random_graph(100, 700, 41);
  GraphView view(g);
  std::vector<std::uint8_t> mask(100, 0);
  SsspResult current = dijkstra(view, 0);
  for (vid_t v = 1; v <= 6; ++v) {
    mask[v] = 1;
    Bans bans{mask.data(), nullptr};
    ResumableDijkstra repaired(view, 0, current, bans);
    repaired.run_to_completion();
    current = repaired.snapshot();
    DijkstraOptions opts;
    opts.bans = bans;
    auto fresh = dijkstra(view, 0, opts);
    for (vid_t u = 0; u < 100; ++u) {
      if (fresh.dist[u] == kInfDist) EXPECT_EQ(current.dist[u], kInfDist);
      else EXPECT_NEAR(current.dist[u], fresh.dist[u], 1e-9);
    }
  }
}

TEST(ResumableDijkstra, BannedSourceProducesEmptyResult) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  GraphView view(g);
  std::vector<std::uint8_t> mask{1, 0};
  ResumableDijkstra rd(view, 0, Bans{mask.data(), nullptr});
  rd.run_to_completion();
  EXPECT_EQ(rd.dist(0), kInfDist);
  EXPECT_EQ(rd.dist(1), kInfDist);
}

}  // namespace
}  // namespace peek::sssp
