#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace peek::graph {
namespace {

TEST(EdgeListIo, ParsesWeighted) {
  std::istringstream in("0 1 2.5\n1 2 0.5\n# comment\n% comment\n2 0 1\n");
  CsrGraph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(g.find_edge(0, 1)), 2.5);
}

TEST(EdgeListIo, DefaultWeightOne) {
  std::istringstream in("0 1\n");
  CsrGraph g = read_edge_list(in);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
}

TEST(EdgeListIo, NHintExpandsVertexCount) {
  std::istringstream in("0 1\n");
  CsrGraph g = read_edge_list(in, 10);
  EXPECT_EQ(g.num_vertices(), 10);
}

TEST(EdgeListIo, RejectsGarbage) {
  std::istringstream in("zero one\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, RoundTrip) {
  auto g = test::random_graph(40, 200, 11);
  std::stringstream buf;
  write_edge_list(buf, g);
  CsrGraph back = read_edge_list(buf, g.num_vertices());
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  // Weight text round-trip loses a little precision; compare structure.
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(back.degree(v), g.degree(v));
}

TEST(BinaryIo, ExactRoundTrip) {
  auto g = test::random_graph(64, 512, 17);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  CsrGraph back = read_binary(buf);
  EXPECT_TRUE(g == back);  // bit-exact, including weights
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf.write("NOTAPEEK", 8);
  std::int64_t dummy[2] = {0, 0};
  buf.write(reinterpret_cast<const char*>(dummy), sizeof dummy);
  EXPECT_THROW(read_binary(buf), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncated) {
  auto g = test::random_graph(16, 64, 3);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  std::string data = buf.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path.txt"),
               std::runtime_error);
  EXPECT_THROW(read_binary_file("/nonexistent/path.bin"), std::runtime_error);
}

TEST(FileIo, BinaryFileRoundTrip) {
  auto g = test::random_graph(32, 128, 5);
  const std::string path = testing::TempDir() + "peek_io_test.bin";
  write_binary_file(path, g);
  CsrGraph back = read_binary_file(path);
  EXPECT_TRUE(g == back);
  std::remove(path.c_str());
}

TEST(DimacsIo, ParsesStandardFormat) {
  std::istringstream in(
      "c comment line\np sp 3 2\na 1 2 1.5\na 2 3 2.5\n");
  CsrGraph g = read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  // 1-based ids in the file, 0-based in memory.
  EXPECT_DOUBLE_EQ(g.edge_weight(g.find_edge(0, 1)), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(g.find_edge(1, 2)), 2.5);
}

TEST(DimacsIo, RejectsMissingHeader) {
  std::istringstream in("a 1 2 1.0\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(DimacsIo, RejectsUnknownTag) {
  std::istringstream in("p sp 2 1\nx 1 2 1.0\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(DimacsIo, RejectsWrongProblemKind) {
  std::istringstream in("p max 2 1\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(DimacsIo, RoundTrip) {
  auto g = test::random_graph(30, 150, 19);
  std::stringstream buf;
  write_dimacs(buf, g);
  CsrGraph back = read_dimacs(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(back.degree(v), g.degree(v));
}

}  // namespace
}  // namespace peek::graph

