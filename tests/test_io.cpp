#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace peek::graph {
namespace {

TEST(EdgeListIo, ParsesWeighted) {
  std::istringstream in("0 1 2.5\n1 2 0.5\n# comment\n% comment\n2 0 1\n");
  CsrGraph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(g.find_edge(0, 1)), 2.5);
}

TEST(EdgeListIo, DefaultWeightOne) {
  std::istringstream in("0 1\n");
  CsrGraph g = read_edge_list(in);
  EXPECT_DOUBLE_EQ(g.edge_weight(0), 1.0);
}

TEST(EdgeListIo, NHintExpandsVertexCount) {
  std::istringstream in("0 1\n");
  CsrGraph g = read_edge_list(in, 10);
  EXPECT_EQ(g.num_vertices(), 10);
}

TEST(EdgeListIo, RejectsGarbage) {
  std::istringstream in("zero one\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, RoundTrip) {
  auto g = test::random_graph(40, 200, 11);
  std::stringstream buf;
  write_edge_list(buf, g);
  CsrGraph back = read_edge_list(buf, g.num_vertices());
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  // Weight text round-trip loses a little precision; compare structure.
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(back.degree(v), g.degree(v));
}

TEST(BinaryIo, ExactRoundTrip) {
  auto g = test::random_graph(64, 512, 17);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  CsrGraph back = read_binary(buf);
  EXPECT_TRUE(g == back);  // bit-exact, including weights
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf.write("NOTAPEEK", 8);
  std::int64_t dummy[2] = {0, 0};
  buf.write(reinterpret_cast<const char*>(dummy), sizeof dummy);
  EXPECT_THROW(read_binary(buf), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncated) {
  auto g = test::random_graph(16, 64, 3);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buf, g);
  std::string data = buf.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path.txt"),
               std::runtime_error);
  EXPECT_THROW(read_binary_file("/nonexistent/path.bin"), std::runtime_error);
}

TEST(FileIo, BinaryFileRoundTrip) {
  auto g = test::random_graph(32, 128, 5);
  const std::string path = testing::TempDir() + "peek_io_test.bin";
  write_binary_file(path, g);
  CsrGraph back = read_binary_file(path);
  EXPECT_TRUE(g == back);
  std::remove(path.c_str());
}

TEST(DimacsIo, ParsesStandardFormat) {
  std::istringstream in(
      "c comment line\np sp 3 2\na 1 2 1.5\na 2 3 2.5\n");
  CsrGraph g = read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  // 1-based ids in the file, 0-based in memory.
  EXPECT_DOUBLE_EQ(g.edge_weight(g.find_edge(0, 1)), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(g.find_edge(1, 2)), 2.5);
}

TEST(DimacsIo, RejectsMissingHeader) {
  std::istringstream in("a 1 2 1.0\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(DimacsIo, RejectsUnknownTag) {
  std::istringstream in("p sp 2 1\nx 1 2 1.0\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(DimacsIo, RejectsWrongProblemKind) {
  std::istringstream in("p max 2 1\n");
  EXPECT_THROW(read_dimacs(in), std::runtime_error);
}

TEST(DimacsIo, RoundTrip) {
  auto g = test::random_graph(30, 150, 19);
  std::stringstream buf;
  write_dimacs(buf, g);
  CsrGraph back = read_dimacs(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(back.degree(v), g.degree(v));
}

// ---- Hardening: malformed input must surface as IoError, never UB. ----

TEST(EdgeListIo, RejectsNegativeIds) {
  std::istringstream in("0 1 1.0\n-3 2 1.0\n");
  EXPECT_THROW(read_edge_list(in), IoError);
}

TEST(EdgeListIo, RejectsIdOverflow) {
  // 2^40 does not fit vid_t (int32): must be a typed error, not a silent
  // truncating cast.
  std::istringstream in("1099511627776 0 1.0\n");
  EXPECT_THROW(read_edge_list(in), IoError);
}

TEST(EdgeListIo, RejectsNanAndNegativeWeights) {
  std::istringstream nan_in("0 1 nan\n");
  EXPECT_THROW(read_edge_list(nan_in), IoError);
  std::istringstream neg_in("0 1 -2.0\n");
  EXPECT_THROW(read_edge_list(neg_in), IoError);
  std::istringstream inf_in("0 1 inf\n");
  EXPECT_THROW(read_edge_list(inf_in), IoError);
}

TEST(EdgeListIo, RejectsMalformedWeightToken) {
  std::istringstream in("0 1 heavy\n");
  EXPECT_THROW(read_edge_list(in), IoError);
}

TEST(EdgeListIo, ErrorCarriesLineContext) {
  std::istringstream in("0 1 1.0\n1 2 1.0\n2 -9 1.0\n");
  try {
    read_edge_list(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(DimacsIo, RejectsNegativeHeaderCounts) {
  std::istringstream in("p sp -4 2\n");
  EXPECT_THROW(read_dimacs(in), IoError);
  std::istringstream in2("p sp 4 -2\n");
  EXPECT_THROW(read_dimacs(in2), IoError);
}

TEST(DimacsIo, RejectsOutOfRangeArcEndpoint) {
  std::istringstream in("p sp 3 1\na 1 7 1.0\n");
  EXPECT_THROW(read_dimacs(in), IoError);
  std::istringstream in2("p sp 3 1\na 0 2 1.0\n");  // ids are 1-based
  EXPECT_THROW(read_dimacs(in2), IoError);
}

TEST(DimacsIo, RejectsMoreArcsThanDeclared) {
  std::istringstream in("p sp 3 1\na 1 2 1.0\na 2 3 1.0\n");
  EXPECT_THROW(read_dimacs(in), IoError);
}

TEST(DimacsIo, RejectsDuplicateHeader) {
  std::istringstream in("p sp 3 1\np sp 3 1\na 1 2 1.0\n");
  EXPECT_THROW(read_dimacs(in), IoError);
}

namespace {
/// Serializes a hand-crafted binary header + payload.
std::stringstream binary_stream(std::int64_t n, std::int64_t m,
                                const std::vector<eid_t>& row,
                                const std::vector<vid_t>& col,
                                const std::vector<weight_t>& wgt) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  const std::uint64_t magic = 0x5045454b43535231ULL;
  buf.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  buf.write(reinterpret_cast<const char*>(&n), sizeof n);
  buf.write(reinterpret_cast<const char*>(&m), sizeof m);
  auto put = [&buf](const auto& v) {
    buf.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(v[0])));
  };
  put(row);
  put(col);
  put(wgt);
  return buf;
}
}  // namespace

TEST(BinaryIo, RejectsNegativeCounts) {
  // A sign-flipped header must not turn into a huge size_t allocation.
  auto buf = binary_stream(-1, 0, {}, {}, {});
  EXPECT_THROW(read_binary(buf), IoError);
  auto buf2 = binary_stream(2, -5, {}, {}, {});
  EXPECT_THROW(read_binary(buf2), IoError);
}

TEST(BinaryIo, RejectsNonMonotoneRowOffsets) {
  auto buf = binary_stream(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0});
  EXPECT_THROW(read_binary(buf), IoError);
}

TEST(BinaryIo, RejectsRowOffsetsNotSpanningEdges) {
  auto buf = binary_stream(2, 2, {0, 1, 1}, {0, 1}, {1.0, 1.0});
  EXPECT_THROW(read_binary(buf), IoError);
}

TEST(BinaryIo, RejectsOutOfRangeTarget) {
  auto buf = binary_stream(2, 2, {0, 1, 2}, {1, 9}, {1.0, 1.0});
  EXPECT_THROW(read_binary(buf), IoError);
}

TEST(BinaryIo, RejectsCorruptWeights) {
  auto buf = binary_stream(2, 1, {0, 1, 1}, {1},
                           {std::numeric_limits<weight_t>::quiet_NaN()});
  EXPECT_THROW(read_binary(buf), IoError);
  auto buf2 = binary_stream(2, 1, {0, 1, 1}, {1}, {-3.0});
  EXPECT_THROW(read_binary(buf2), IoError);
}

// ---- Format-version compat: legacy PEEKCSR1 vs v2 PEEKSNP2 containers. ----

namespace {
std::string serialized(void (*writer)(std::ostream&, const CsrGraph&),
                       const CsrGraph& g) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writer(buf, g);
  return buf.str();
}

std::stringstream stream_of(const std::string& bytes) {
  return std::stringstream(bytes,
                           std::ios::in | std::ios::out | std::ios::binary);
}
}  // namespace

TEST(BinaryCompat, LegacyReadCompatRoundTrip) {
  // Files written by the pre-v2 writer must keep loading bit-exact.
  auto g = test::random_graph(48, 300, 23);
  auto buf = stream_of(serialized(write_binary_legacy, g));
  CsrGraph back = read_binary(buf);
  EXPECT_TRUE(g == back);
}

TEST(BinaryCompat, DefaultWriterEmitsV2Magic) {
  auto g = test::random_graph(8, 20, 1);
  const std::string bytes = serialized(write_binary, g);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "PEEKSNP2");
}

TEST(BinaryCompat, LegacyTruncatedMidSectionCarriesOffset) {
  auto g = test::random_graph(32, 128, 7);
  const std::string bytes = serialized(write_binary_legacy, g);
  // Cut inside the column array: past the 24-byte header + row offsets.
  const size_t cut = 24 + (static_cast<size_t>(g.num_vertices()) + 1) * 8 + 5;
  ASSERT_LT(cut, bytes.size());
  auto in = stream_of(bytes.substr(0, cut));
  try {
    read_binary(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_GE(e.offset(), 0);
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(BinaryCompat, V2TruncatedMidSectionCarriesOffset) {
  auto g = test::random_graph(32, 128, 7);
  const std::string bytes = serialized(write_binary, g);
  for (const size_t cut : {bytes.size() - 3, bytes.size() / 2, size_t{21}}) {
    auto in = stream_of(bytes.substr(0, cut));
    try {
      read_binary(in);
      FAIL() << "expected IoError at cut " << cut;
    } catch (const IoError& e) {
      EXPECT_GE(e.offset(), 0) << "cut " << cut;
    }
  }
}

TEST(BinaryCompat, LegacyTrailingGarbageRejected) {
  auto g = test::random_graph(16, 64, 9);
  auto in = stream_of(serialized(write_binary_legacy, g) + "junk");
  EXPECT_THROW(read_binary(in), IoError);
}

TEST(BinaryCompat, V2TrailingGarbageRejected) {
  auto g = test::random_graph(16, 64, 9);
  auto in = stream_of(serialized(write_binary, g) + std::string(3, '\0'));
  EXPECT_THROW(read_binary(in), IoError);
}

TEST(BinaryCompat, V2BitFlipRejected) {
  // A single flipped payload bit must fail a section checksum — the legacy
  // format would have served it silently if the arrays stayed structurally
  // valid; that is exactly why v2 exists.
  auto g = test::random_graph(16, 64, 13);
  std::string bytes = serialized(write_binary, g);
  bytes[bytes.size() - 9] = static_cast<char>(bytes[bytes.size() - 9] ^ 0x10);
  auto in = stream_of(bytes);
  EXPECT_THROW(read_binary(in), IoError);
}

TEST(BinaryCompat, FileErrorsCarryPathContext) {
  auto g = test::random_graph(16, 64, 3);
  const std::string path = testing::TempDir() + "peek_io_corrupt.bin";
  write_binary_file(path, g);
  {
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      bytes = ss.str();
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()) - 4);
  }
  try {
    read_binary_file(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

// Fuzz-style: deterministic pseudo-random byte soup must parse or throw
// IoError — never crash, hang, or return a structurally invalid graph.
TEST(IoFuzz, RandomBytesNeverCrash) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string bytes(static_cast<size_t>(next() % 256), '\0');
    for (auto& c : bytes) {
      // Bias toward printable digits/space so text parsers get past line 1.
      const auto r = next();
      c = static_cast<char>(r % 4 == 0 ? ' ' : '0' + r % 75);
    }
    for (int reader = 0; reader < 3; ++reader) {
      std::stringstream in(bytes,
                           std::ios::in | std::ios::out | std::ios::binary);
      try {
        CsrGraph g = reader == 0   ? read_edge_list(in)
                     : reader == 1 ? read_dimacs(in)
                                   : read_binary(in);
        // Parsed: spot-check structural sanity.
        EXPECT_GE(g.num_vertices(), 0);
        EXPECT_GE(g.num_edges(), 0);
      } catch (const IoError&) {
        // Typed rejection is the expected outcome for garbage.
      }
    }
  }
}

}  // namespace
}  // namespace peek::graph

