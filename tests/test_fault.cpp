// Fault model end-to-end: CancelToken/CancelPoll semantics, cancellation
// threaded through the kernels, deterministic fault injection, and the
// serving layer's admission control / degraded modes (DESIGN.md §9).
//
// Every test here proves one side of the same contract: an injected fault,
// a tripped deadline, or an overload NEVER crashes, hangs, or silently
// returns a wrong answer — it surfaces as a typed fault::Status.
//
// The injector and the metrics registry are process-global, so each test
// configures the injector itself, reads metrics as before/after deltas, and
// the fixture disables injection on teardown.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/peek.hpp"
#include "fault/cancel.hpp"
#include "fault/injector.hpp"
#include "fault/status.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "serve/query_engine.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

using namespace std::chrono_literals;

std::int64_t metric(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().disable(); }
};

// ---------------------------------------------------------------- tokens --

TEST(CancelTokenTest, NullTokenNeverTriggers) {
  fault::CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.triggered());
  EXPECT_EQ(t.why(), fault::Status::kOk);
  fault::CancelPoll poll(&t);
  EXPECT_FALSE(poll.should_stop());
  fault::CancelPoll null_poll(nullptr);
  EXPECT_FALSE(null_poll.should_stop());
}

TEST(CancelTokenTest, ManualCancelIsSticky) {
  auto t = fault::CancelToken::cancellable();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.triggered());
  EXPECT_FALSE(t.deadline().has_value());
  t.cancel();
  EXPECT_TRUE(t.cancelled_fast());
  EXPECT_TRUE(t.triggered());
  EXPECT_EQ(t.why(), fault::Status::kCancelled);
  t.cancel();  // idempotent
  EXPECT_EQ(t.why(), fault::Status::kCancelled);
}

TEST(CancelTokenTest, DeadlineExpiryIsTypedAndSticky) {
  auto t = fault::CancelToken::after(1ms);
  ASSERT_TRUE(t.deadline().has_value());
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(t.triggered());
  EXPECT_EQ(t.why(), fault::Status::kDeadlineExceeded);
  // The expiry observation is sticky: the flags-only fast path sees it now.
  EXPECT_TRUE(t.cancelled_fast());
}

TEST(CancelTokenTest, PastDeadlineTriggersImmediately) {
  auto t = fault::CancelToken::at(fault::CancelToken::Clock::now() - 1s);
  EXPECT_TRUE(t.triggered());
  EXPECT_EQ(t.why(), fault::Status::kDeadlineExceeded);
}

TEST(CancelTokenTest, ManualCancelWinsOverLiveDeadline) {
  auto t = fault::CancelToken::after(1h);
  t.cancel();
  EXPECT_EQ(t.why(), fault::Status::kCancelled);
}

TEST(CancelTokenTest, LinkedTokenFollowsParentCancel) {
  auto parent = fault::CancelToken::cancellable();
  auto child = fault::CancelToken::linked(parent, 1h);
  EXPECT_FALSE(child.triggered());
  parent.cancel();
  EXPECT_TRUE(child.triggered());
  EXPECT_EQ(child.why(), fault::Status::kCancelled);
}

TEST(CancelTokenTest, LinkedTokenOwnDeadlineDoesNotTouchParent) {
  auto parent = fault::CancelToken::cancellable();
  auto child = fault::CancelToken::linked(parent, 1ms);
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(child.triggered());
  EXPECT_EQ(child.why(), fault::Status::kDeadlineExceeded);
  EXPECT_FALSE(parent.triggered());
}

TEST(CancelTokenTest, PollChecksClockEveryStridethCall) {
  // Expired deadline, never observed: the flags fast path stays false until
  // a strided clock check runs.
  auto t = fault::CancelToken::at(fault::CancelToken::Clock::now() - 1s);
  fault::CancelPoll poll(&t, /*stride=*/4);
  EXPECT_FALSE(poll.should_stop());
  EXPECT_FALSE(poll.should_stop());
  EXPECT_FALSE(poll.should_stop());
  EXPECT_TRUE(poll.should_stop());  // 4th call reads the clock
  EXPECT_EQ(poll.why(), fault::Status::kDeadlineExceeded);
  EXPECT_TRUE(poll.should_stop());  // sticky
}

// --------------------------------------------------- kernel cancellation --

TEST(KernelCancellation, DijkstraReturnsTypedPartialResult) {
  auto g = test::random_graph(300, 1800, 7);
  auto tok = fault::CancelToken::cancellable();
  tok.cancel();
  sssp::DijkstraOptions o;
  o.cancel = &tok;
  auto r = sssp::dijkstra(sssp::GraphView(g), 0, o);
  EXPECT_EQ(r.status, fault::Status::kCancelled);
  EXPECT_EQ(r.dist.size(), static_cast<size_t>(g.num_vertices()));
  EXPECT_EQ(r.parent.size(), static_cast<size_t>(g.num_vertices()));

  auto ok = sssp::dijkstra(sssp::GraphView(g), 0);
  EXPECT_EQ(ok.status, fault::Status::kOk);
}

TEST(KernelCancellation, DeltaSteppingReturnsTypedPartialResult) {
  auto g = test::random_graph(300, 1800, 8);
  auto tok = fault::CancelToken::cancellable();
  tok.cancel();
  sssp::DeltaSteppingOptions o;
  o.cancel = &tok;
  auto r = sssp::delta_stepping(sssp::GraphView(g), 0, o);
  EXPECT_EQ(r.status, fault::Status::kCancelled);
  EXPECT_EQ(r.dist.size(), static_cast<size_t>(g.num_vertices()));
}

TEST(KernelCancellation, PeekPipelineHonorsPreCancelledToken) {
  auto g = test::random_graph(200, 1200, 9);
  auto tok = fault::CancelToken::cancellable();
  tok.cancel();
  core::PeekOptions po;
  po.k = 4;
  po.cancel = &tok;
  auto r = core::peek_ksp(g, 0, g.num_vertices() - 1, po);
  EXPECT_EQ(r.status, fault::Status::kCancelled);
  EXPECT_TRUE(r.ksp.paths.empty());  // cancelled before the first path
}

TEST(KernelCancellation, UntrippedTokenChangesNothing) {
  auto g = test::random_graph(200, 1200, 10);
  const vid_t s = 0, t = g.num_vertices() - 1;
  core::PeekOptions base;
  base.k = 5;
  auto r0 = core::peek_ksp(g, s, t, base);
  auto tok = fault::CancelToken::cancellable();
  core::PeekOptions po = base;
  po.cancel = &tok;
  auto r1 = core::peek_ksp(g, s, t, po);
  EXPECT_EQ(r1.status, fault::Status::kOk);
  ASSERT_EQ(r1.ksp.paths.size(), r0.ksp.paths.size());
  for (size_t i = 0; i < r0.ksp.paths.size(); ++i) {
    EXPECT_EQ(r1.ksp.paths[i].verts, r0.ksp.paths[i].verts);
    EXPECT_EQ(r1.ksp.paths[i].dist, r0.ksp.paths[i].dist);  // bit-identical
  }
}

// ------------------------------------------------------------- injector --

TEST_F(FaultTest, InjectorIsDeterministicPerSeed) {
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.rate_permille = 500;
  auto run = [&cfg] {
    fault::Injector::global().configure(cfg);  // resets per-site hit indices
    std::vector<bool> seq;
    for (int i = 0; i < 200; ++i)
      seq.push_back(fault::Injector::global().should_fire("test.site"));
    return seq;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);  // same seed -> identical firing sequence

  const auto fired_in_b =
      static_cast<std::int64_t>(std::count(b.begin(), b.end(), true));
  EXPECT_GT(fired_in_b, 0);
  EXPECT_LT(fired_in_b, 200);
  EXPECT_EQ(fault::Injector::global().fired("test.site"), fired_in_b);
  EXPECT_EQ(fault::Injector::global().total_fired(), fired_in_b);

  cfg.seed = 43;
  EXPECT_NE(run(), a);  // different seed -> different sequence
}

TEST_F(FaultTest, InjectorRateEndpointsAndSiteFilter) {
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.rate_permille = 1000;
  cfg.site_filter = "allowed.site";
  fault::Injector::global().configure(cfg);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(fault::Injector::global().should_fire("allowed.site"));
    EXPECT_FALSE(fault::Injector::global().should_fire("other.site"));
  }
  EXPECT_EQ(fault::Injector::global().fired("allowed.site"), 20);
  EXPECT_EQ(fault::Injector::global().fired("other.site"), 0);

  cfg.rate_permille = 0;
  cfg.site_filter.clear();
  fault::Injector::global().configure(cfg);
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(fault::Injector::global().should_fire("allowed.site"));
}

TEST_F(FaultTest, MaxFiresCapsPerSiteButKeepsSequence) {
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.rate_permille = 500;
  auto run = [&cfg] {
    fault::Injector::global().configure(cfg);
    std::vector<bool> seq;
    for (int i = 0; i < 200; ++i)
      seq.push_back(fault::Injector::global().should_fire("test.site"));
    return seq;
  };
  const auto uncapped = run();
  const auto total =
      std::count(uncapped.begin(), uncapped.end(), true);
  ASSERT_GT(total, 3);  // enough fires for the cap to bite

  cfg.max_fires = 3;
  const auto capped = run();
  EXPECT_EQ(std::count(capped.begin(), capped.end(), true), 3);
  EXPECT_EQ(fault::Injector::global().fired("test.site"), 3);
  // Hit indices keep advancing under the cap, so the decision sequence below
  // it is the uncapped one exactly; above it, nothing ever fires.
  std::int64_t fires = 0;
  for (size_t i = 0; i < uncapped.size(); ++i) {
    if (fires < 3) {
      EXPECT_EQ(capped[i], uncapped[i]) << "probe " << i;
    } else {
      EXPECT_FALSE(capped[i]) << "probe " << i << " fired beyond the cap";
    }
    if (uncapped[i]) ++fires;
  }
}

TEST_F(FaultTest, MaxFiresConfiguredFromEnv) {
  setenv("PEEK_FAULT_SEED", "1", /*overwrite=*/0);
  setenv("PEEK_FAULT_RATE", "1000", 1);
  setenv("PEEK_FAULT_MAX", "2", 1);
  fault::Injector::global().configure_from_env();
  EXPECT_EQ(fault::Injector::global().config().max_fires, 2);
  for (int i = 0; i < 10; ++i)
    fault::Injector::global().should_fire("env.capped.site");
  EXPECT_EQ(fault::Injector::global().fired("env.capped.site"), 2);
  unsetenv("PEEK_FAULT_RATE");
  unsetenv("PEEK_FAULT_MAX");
}

TEST_F(FaultTest, DisabledProbesAreInert) {
  fault::Injector::global().disable();
  EXPECT_FALSE(PEEK_FAULT_FIRE("test.site"));
  EXPECT_NO_THROW(PEEK_FAULT_ALLOC("test.site"));
  EXPECT_EQ(fault::Injector::global().total_fired(), 0);
}

TEST_F(FaultTest, InjectedAllocSurfacesAsResourceExhausted) {
  auto g = test::random_graph(150, 900, 11);
  const std::int64_t before = metric("fault.injected");

  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 3;
  cfg.rate_permille = 1000;
  cfg.site_filter = "prune.sssp.alloc";
  fault::Injector::global().configure(cfg);
  core::PeekOptions po;
  po.k = 4;
  auto r = core::peek_ksp(g, 0, g.num_vertices() - 1, po);
  EXPECT_EQ(r.status, fault::Status::kResourceExhausted);
  EXPECT_TRUE(r.ksp.paths.empty());

  cfg.site_filter = "compact.regenerate.alloc";
  fault::Injector::global().configure(cfg);
  const std::int64_t mid = metric("fault.injected");
  core::PeekOptions pr;
  pr.k = 4;
  pr.compaction = core::PeekOptions::Compaction::kRegeneration;
  auto r2 = core::peek_ksp(g, 0, g.num_vertices() - 1, pr);
  EXPECT_EQ(r2.status, fault::Status::kResourceExhausted);
  // Every fire is counted in both the injector and the metric.
  EXPECT_GT(fault::Injector::global().total_fired(), 0);
  EXPECT_EQ(metric("fault.injected") - mid,
            fault::Injector::global().total_fired());
  EXPECT_GT(metric("fault.injected"), before);
}

TEST_F(FaultTest, InjectedIoAllocSurfacesAsIoError) {
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 2;
  cfg.rate_permille = 1000;
  cfg.site_filter = "graph.io.alloc";
  fault::Injector::global().configure(cfg);
  std::istringstream in("0 1 1.0\n1 2 1.0\n");
  EXPECT_THROW(graph::read_edge_list(in), graph::IoError);
}

// CI sweeps this binary with PEEK_FAULT_SEED in {1, 2, 3}: whatever the
// seed, every injected fault must surface as a typed Status and be counted.
TEST_F(FaultTest, SeedSweepFaultsAreTypedAndCounted) {
  setenv("PEEK_FAULT_SEED", "1", /*overwrite=*/0);  // default when CI not set
  setenv("PEEK_FAULT_RATE", "1000", 1);
  setenv("PEEK_FAULT_SITES", "prune.sssp.alloc", 1);
  const std::int64_t before = metric("fault.injected");
  fault::Injector::global().configure_from_env();
  EXPECT_TRUE(fault::Injector::global().enabled());
  const auto cfg = fault::Injector::global().config();
  EXPECT_EQ(cfg.seed, static_cast<std::uint64_t>(
                          std::atoll(std::getenv("PEEK_FAULT_SEED"))));

  auto g = test::random_graph(150, 900, 13);
  core::PeekOptions po;
  po.k = 4;
  auto r = core::peek_ksp(g, 0, g.num_vertices() - 1, po);
  EXPECT_EQ(r.status, fault::Status::kResourceExhausted);  // typed, no throw
  EXPECT_GT(fault::Injector::global().total_fired(), 0);
  EXPECT_EQ(metric("fault.injected") - before,
            fault::Injector::global().total_fired());

  unsetenv("PEEK_FAULT_RATE");
  unsetenv("PEEK_FAULT_SITES");
}

// ------------------------------------------------------------- serving --

TEST_F(FaultTest, QueryValidatesArguments) {
  auto g = test::random_graph(50, 300, 21);
  serve::QueryEngine engine(g);
  const std::int64_t before = metric("serve.invalid_arguments");
  EXPECT_EQ(engine.query(-1, 1, 4).status.code, fault::Status::kInvalidArgument);
  EXPECT_EQ(engine.query(0, g.num_vertices(), 4).status.code,
            fault::Status::kInvalidArgument);
  EXPECT_EQ(engine.query(0, 1, 0).status.code, fault::Status::kInvalidArgument);
  EXPECT_EQ(metric("serve.invalid_arguments") - before, 3);
  EXPECT_EQ(engine.inflight_entries(), 0u);
}

// The ISSUE acceptance scenario: a 1 ms deadline on a stalled pipeline
// returns kDeadlineExceeded (not a crash, not a hang) while a concurrent
// normal query on the same engine still gets the exact PeeK answer.
TEST_F(FaultTest, DeadlineExceededUnderInjectedStall) {
  auto g = test::random_graph(1500, 12000, 31);
  const vid_t s = 0, t = g.num_vertices() - 1;
  core::PeekOptions base;
  base.k = 8;
  auto fresh = core::peek_ksp(g, s, t, base);

  serve::ServeOptions so;
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1;
  cfg.rate_permille = 1000;
  cfg.stall = 60ms;
  cfg.site_filter = "prune.scan.stall";
  so.injector = cfg;
  serve::QueryEngine engine(g, so);
  EXPECT_TRUE(fault::Injector::global().enabled());  // ctor installed it

  const std::int64_t before = metric("serve.deadline_exceeded");
  serve::ServeResult tight, normal;
  std::thread deadline_thread([&] {
    serve::QueryOptions qo;
    qo.deadline = 1ms;
    tight = engine.query(s, t, 8, qo);
  });
  std::this_thread::sleep_for(20ms);
  normal = engine.query(s, t, 8);
  deadline_thread.join();

  EXPECT_EQ(tight.status.code, fault::Status::kDeadlineExceeded);
  test::check_ksp_invariants(g, s, t, tight.paths);  // partial but valid
  EXPECT_GE(metric("serve.deadline_exceeded") - before, 1);

  // The un-cancelled query is bit-identical to fresh core::peek_ksp.
  EXPECT_TRUE(normal.status.ok());
  ASSERT_EQ(normal.paths.size(), fresh.ksp.paths.size());
  for (size_t i = 0; i < fresh.ksp.paths.size(); ++i) {
    EXPECT_EQ(normal.paths[i].verts, fresh.ksp.paths[i].verts);
    EXPECT_EQ(normal.paths[i].dist, fresh.ksp.paths[i].dist);
  }
  EXPECT_EQ(engine.inflight_entries(), 0u);
  EXPECT_EQ(engine.admitted_now(), 0);
}

TEST_F(FaultTest, CallerTokenCancelsMidFlight) {
  auto g = test::random_graph(1500, 12000, 37);
  serve::ServeOptions so;
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1;
  cfg.rate_permille = 1000;
  cfg.stall = 100ms;
  cfg.site_filter = "prune.scan.stall";
  so.injector = cfg;
  serve::QueryEngine engine(g, so);

  auto tok = fault::CancelToken::cancellable();
  serve::ServeResult r;
  std::thread qt([&] {
    serve::QueryOptions qo;
    qo.cancel = &tok;
    r = engine.query(0, g.num_vertices() - 1, 8, qo);
  });
  std::this_thread::sleep_for(10ms);
  tok.cancel();
  qt.join();
  EXPECT_EQ(r.status.code, fault::Status::kCancelled);
  EXPECT_EQ(engine.inflight_entries(), 0u);
}

TEST_F(FaultTest, AdmissionControlShedsBeyondMaxInflight) {
  auto g = test::random_graph(400, 2800, 41);
  serve::ServeOptions so;
  so.max_inflight = 1;
  so.degraded_serving = false;
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1;
  cfg.rate_permille = 1000;
  cfg.stall = 250ms;  // holds the occupant inside query()
  cfg.site_filter = "prune.scan.stall";
  so.injector = cfg;
  serve::QueryEngine engine(g, so);

  const std::int64_t before = metric("serve.shed");
  serve::ServeResult slow;
  std::thread occupant([&] { slow = engine.query(0, 1, 4); });
  std::this_thread::sleep_for(50ms);
  auto shed = engine.query(2, 3, 4);  // second query while the slot is held
  occupant.join();

  EXPECT_EQ(shed.status.code, fault::Status::kOverloaded);
  EXPECT_TRUE(shed.paths.empty());
  EXPECT_GE(metric("serve.shed") - before, 1);
  EXPECT_TRUE(slow.status.ok());
  EXPECT_EQ(engine.admitted_now(), 0);
  EXPECT_EQ(engine.inflight_entries(), 0u);
}

TEST_F(FaultTest, ShedQueryDegradesToCachedPaths) {
  auto g = test::random_graph(400, 2800, 43);
  const vid_t s = 0, t = g.num_vertices() - 1;
  serve::ServeOptions so;
  so.max_inflight = 1;  // degraded_serving stays default-on
  serve::QueryEngine engine(g, so);
  auto warm = engine.query(s, t, 4);  // materializes the (s, t) snapshot
  ASSERT_TRUE(warm.status.ok());
  ASSERT_FALSE(warm.paths.empty());

  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1;
  cfg.rate_permille = 1000;
  cfg.stall = 250ms;
  cfg.site_filter = "prune.scan.stall";
  fault::Injector::global().configure(cfg);

  const std::int64_t before = metric("serve.degraded");
  serve::ServeResult slow;
  std::thread occupant([&] { slow = engine.query(1, 2, 4); });
  std::this_thread::sleep_for(50ms);
  auto degraded = engine.query(s, t, 4);  // shed -> cached answer, no work
  occupant.join();

  EXPECT_TRUE(degraded.status.ok());
  EXPECT_TRUE(degraded.degraded);
  EXPECT_TRUE(degraded.snapshot_hit);
  ASSERT_EQ(degraded.paths.size(), warm.paths.size());
  for (size_t i = 0; i < warm.paths.size(); ++i)
    EXPECT_EQ(degraded.paths[i].verts, warm.paths[i].verts);
  EXPECT_GE(metric("serve.degraded") - before, 1);
  EXPECT_TRUE(slow.status.ok());
}

TEST_F(FaultTest, CorruptSnapshotHitIsDroppedAndRecomputed) {
  auto g = test::random_graph(300, 2100, 47);
  const vid_t s = 0, t = g.num_vertices() - 1;
  serve::QueryEngine engine(g);
  auto warm = engine.query(s, t, 4);
  ASSERT_TRUE(warm.status.ok());

  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1;
  cfg.rate_permille = 1000;
  cfg.site_filter = "serve.snapshot.corrupt";
  fault::Injector::global().configure(cfg);

  const std::int64_t before = metric("serve.cache.corruption_drops");
  auto r = engine.query(s, t, 4);
  EXPECT_TRUE(r.status.ok());
  EXPECT_FALSE(r.snapshot_hit);  // the doubted hit was dropped
  EXPECT_GE(metric("serve.cache.corruption_drops") - before, 1);
  ASSERT_EQ(r.paths.size(), warm.paths.size());
  for (size_t i = 0; i < warm.paths.size(); ++i) {
    EXPECT_EQ(r.paths[i].verts, warm.paths[i].verts);
    EXPECT_EQ(r.paths[i].dist, warm.paths[i].dist);
  }
}

TEST_F(FaultTest, InjectedAllocInServingIsTypedNotThrown) {
  auto g = test::random_graph(300, 2100, 53);
  serve::ServeOptions so;
  fault::InjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1;
  cfg.rate_permille = 1000;
  cfg.site_filter = "prune.sssp.alloc";
  so.injector = cfg;
  serve::QueryEngine engine(g, so);
  auto r = engine.query(0, g.num_vertices() - 1, 4);
  EXPECT_EQ(r.status.code, fault::Status::kResourceExhausted);
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(engine.inflight_entries(), 0u);

  // With injection off again the same engine serves the query normally.
  fault::Injector::global().disable();
  auto ok = engine.query(0, g.num_vertices() - 1, 4);
  EXPECT_TRUE(ok.status.ok());
}

}  // namespace
}  // namespace peek
