#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace peek::graph {
namespace {

CsrGraph triangle() {
  // 0 -> 1 (1.0), 1 -> 2 (2.0), 2 -> 0 (3.0)
  return CsrGraph({0, 1, 2, 3}, {1, 2, 0}, {1.0, 2.0, 3.0});
}

TEST(CsrGraph, BasicAccessors) {
  CsrGraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.edge_target(g.edge_begin(1)), 2);
  EXPECT_DOUBLE_EQ(g.edge_weight(g.edge_begin(2)), 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
}

TEST(CsrGraph, NeighborSpans) {
  CsrGraph g = triangle();
  auto nbrs = g.neighbors(1);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], 2);
  auto ws = g.neighbor_weights(1);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_DOUBLE_EQ(ws[0], 2.0);
}

TEST(CsrGraph, FindEdge) {
  CsrGraph g = triangle();
  EXPECT_NE(g.find_edge(0, 1), kNoEdge);
  EXPECT_EQ(g.find_edge(0, 2), kNoEdge);
  EXPECT_EQ(g.find_edge(1, 0), kNoEdge);
}

TEST(CsrGraph, EmptyGraph) {
  CsrGraph g({0}, {}, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(CsrGraph, IsolatedVertices) {
  CsrGraph g({0, 0, 0, 0}, {}, {});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(CsrGraph, RejectsBadOffsets) {
  EXPECT_THROW(CsrGraph({0, 2, 1}, {0, 0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({1, 2}, {0}, {1}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({}, {}, {}), std::invalid_argument);
}

TEST(CsrGraph, RejectsColumnOutOfRange) {
  EXPECT_THROW(CsrGraph({0, 1}, {5}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({0, 1}, {-1}, {1.0}), std::invalid_argument);
}

TEST(CsrGraph, RejectsSizeMismatch) {
  EXPECT_THROW(CsrGraph({0, 1}, {0}, {}), std::invalid_argument);
}

TEST(Transpose, ReversesEveryEdge) {
  CsrGraph g = triangle();
  CsrGraph r = transpose(g);
  EXPECT_EQ(r.num_vertices(), 3);
  EXPECT_EQ(r.num_edges(), 3);
  // 0 -> 1 becomes 1 -> 0 etc., weights preserved.
  const eid_t e = r.find_edge(1, 0);
  ASSERT_NE(e, kNoEdge);
  EXPECT_DOUBLE_EQ(r.edge_weight(e), 1.0);
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  auto g = test::random_graph(64, 256, 42);
  CsrGraph tt = transpose(transpose(g));
  EXPECT_TRUE(g == tt);
}

TEST(Transpose, CachedReverseMatchesFreeFunction) {
  auto g = test::random_graph(32, 100, 7);
  const CsrGraph& cached = g.reverse();
  CsrGraph direct = transpose(g);
  EXPECT_TRUE(cached == direct);
  // Second call returns the same object (cache hit).
  EXPECT_EQ(&g.reverse(), &cached);
}

TEST(Transpose, PreservesParallelStructureCounts) {
  auto g = test::random_graph(50, 400, 9);
  CsrGraph r = transpose(g);
  // In-degree of v in g == out-degree of v in r.
  std::vector<int> indeg(50, 0);
  for (eid_t e = 0; e < g.num_edges(); ++e) indeg[g.col()[e]]++;
  for (vid_t v = 0; v < 50; ++v) EXPECT_EQ(r.degree(v), indeg[v]);
}

TEST(CsrGraph, EqualityDetectsWeightChange) {
  CsrGraph a = triangle();
  CsrGraph b({0, 1, 2, 3}, {1, 2, 0}, {1.0, 2.0, 3.5});
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace peek::graph
