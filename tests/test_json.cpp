// Edge cases for the obs/json.cpp metrics parser: truncated documents,
// duplicate keys, non-UTF8 bytes, and out-of-range numbers (which must
// saturate, not overflow — a hand-edited metrics file is attacker-ish input).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace peek::obs {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.counters["sssp.relaxed"] = 1234;
  snap.counters["prune.removed"] = -7;  // counters may go negative via add()
  snap.gauges["prune.ratio"] = 0.015625;
  snap.timers["peek.total"] = TimerValue{1.5, 3};
  return snap;
}

TEST(JsonRoundTrip, SampleSnapshotSurvives) {
  const auto snap = sample_snapshot();
  const auto back = parse_metrics_json(snap.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->counters, snap.counters);
  EXPECT_EQ(back->gauges, snap.gauges);
  ASSERT_EQ(back->timers.size(), 1u);
  EXPECT_DOUBLE_EQ(back->timers.at("peek.total").seconds, 1.5);
  EXPECT_EQ(back->timers.at("peek.total").count, 3u);
}

TEST(JsonRoundTrip, EscapedNamesSurvive) {
  MetricsSnapshot snap;
  snap.counters["weird \"name\"\\with\n\tctrl\x01"] = 9;
  const auto back = parse_metrics_json(snap.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->counters, snap.counters);
}

TEST(JsonTruncated, EveryPrefixIsRejectedOrEmpty) {
  // Chopping the document anywhere must never crash, and can only succeed
  // at full length (the parser requires the input to be fully consumed).
  std::string doc = sample_snapshot().to_json();
  while (!doc.empty() && doc.back() == '\n') doc.pop_back();
  for (size_t len = 0; len < doc.size(); ++len) {
    const auto out = parse_metrics_json(doc.substr(0, len));
    EXPECT_FALSE(out.has_value()) << "prefix length " << len;
  }
  EXPECT_TRUE(parse_metrics_json(doc).has_value());
}

TEST(JsonTruncated, TrailingGarbageRejected) {
  const std::string doc = sample_snapshot().to_json();
  EXPECT_FALSE(parse_metrics_json(doc + "x").has_value());
  EXPECT_FALSE(parse_metrics_json(doc + "{}").has_value());
}

TEST(JsonMalformed, StructuralErrorsRejected) {
  EXPECT_FALSE(parse_metrics_json("").has_value());
  EXPECT_FALSE(parse_metrics_json("null").has_value());
  EXPECT_FALSE(parse_metrics_json("[]").has_value());
  EXPECT_FALSE(parse_metrics_json("{\"unknown\": {}}").has_value());
  EXPECT_FALSE(parse_metrics_json("{\"counters\": []}").has_value());
  EXPECT_FALSE(parse_metrics_json("{\"counters\": {\"a\" 1}}").has_value());
  EXPECT_FALSE(parse_metrics_json("{\"counters\": {\"a\": }}").has_value());
  EXPECT_FALSE(
      parse_metrics_json("{\"counters\": {\"a\": 1,}}").has_value());
  // Unterminated string and bad escapes.
  EXPECT_FALSE(parse_metrics_json("{\"counters").has_value());
  EXPECT_FALSE(parse_metrics_json("{\"counters\\q\": {}}").has_value());
  EXPECT_FALSE(parse_metrics_json("{\"counters\\u12").has_value());
  EXPECT_FALSE(parse_metrics_json("{\"counters\\uzzzz\": {}}").has_value());
}

TEST(JsonDuplicateKeys, LastValueWins) {
  const auto out = parse_metrics_json(
      "{\"counters\": {\"a\": 1, \"a\": 2},"
      " \"gauges\": {\"g\": 0.5, \"g\": 0.25},"
      " \"timers\": {\"t\": {\"seconds\": 1, \"count\": 1},"
      "              \"t\": {\"seconds\": 2, \"count\": 4}}}");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->counters.at("a"), 2);
  EXPECT_DOUBLE_EQ(out->gauges.at("g"), 0.25);
  EXPECT_DOUBLE_EQ(out->timers.at("t").seconds, 2.0);
  EXPECT_EQ(out->timers.at("t").count, 4u);
}

TEST(JsonDuplicateKeys, DuplicateSectionsMerge) {
  const auto out = parse_metrics_json(
      "{\"counters\": {\"a\": 1}, \"counters\": {\"b\": 2}}");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->counters.at("a"), 1);
  EXPECT_EQ(out->counters.at("b"), 2);
}

TEST(JsonNonUtf8, RawHighBytesPassThroughNames) {
  // The exporter only escapes ASCII control chars; arbitrary >= 0x80 bytes
  // (not valid UTF-8 here) must survive a round trip byte-for-byte without
  // tripping any ctype UB.
  std::string name = "metric.";
  name += static_cast<char>(0xff);
  name += static_cast<char>(0x80);
  name += static_cast<char>(0xc3);
  MetricsSnapshot snap;
  snap.counters[name] = 42;
  const auto back = parse_metrics_json(snap.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->counters, snap.counters);
}

TEST(JsonNonUtf8, EscapedNonAsciiCodepointRejected) {
  // Metric names are ASCII by contract; \u escapes above 0x7f are not ours.
  EXPECT_FALSE(
      parse_metrics_json("{\"counters\": {\"\\u00ff\": 1}}").has_value());
}

TEST(JsonHugeNumbers, CounterValuesSaturateNotOverflow) {
  const auto out = parse_metrics_json(
      "{\"counters\": {\"big\": 1e30, \"small\": -1e30,"
      " \"edge\": 9223372036854775808}}");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->counters.at("big"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(out->counters.at("small"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(out->counters.at("edge"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(JsonHugeNumbers, TimerCountSaturatesAndNegativeClampsToZero) {
  const auto out = parse_metrics_json(
      "{\"timers\": {\"t\": {\"seconds\": 1e308, \"count\": 1e30},"
      " \"neg\": {\"seconds\": -1, \"count\": -5}}}");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->timers.at("t").count,
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_DOUBLE_EQ(out->timers.at("t").seconds, 1e308);
  EXPECT_EQ(out->timers.at("neg").count, 0u);
}

TEST(JsonHugeNumbers, OverflowingLiteralRejectedNotUb) {
  // 1e400 overflows double entirely — stod throws, the parser reports
  // malformed input instead of propagating or crashing.
  EXPECT_FALSE(
      parse_metrics_json("{\"counters\": {\"a\": 1e400}}").has_value());
}

TEST(JsonHugeNumbers, GaugesKeepExtremeDoubles) {
  const auto out = parse_metrics_json(
      "{\"gauges\": {\"a\": 1e308, \"b\": -1e308, \"c\": 5e-324}}");
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->gauges.at("a"), 1e308);
  EXPECT_DOUBLE_EQ(out->gauges.at("b"), -1e308);
  EXPECT_DOUBLE_EQ(out->gauges.at("c"), 5e-324);
}

}  // namespace
}  // namespace peek::obs
