// Boundary conditions across the public API surface: trivial graphs,
// s == t, K larger than the path space, single-vertex graphs, and other
// corners a downstream user will eventually hit.
#include <gtest/gtest.h>

#include "core/peek.hpp"
#include "core/shortest_k_group.hpp"
#include "dist/dist_peek.hpp"
#include "ksp/hop_limited.hpp"
#include "ksp/optyen.hpp"
#include "ksp/pnc.hpp"
#include "ksp/sidetrack.hpp"
#include "test_util.hpp"

namespace peek {
namespace {

TEST(EdgeCases, SingleVertexGraph) {
  graph::CsrGraph g({0, 0}, {}, {});
  core::PeekOptions po;
  po.k = 3;
  auto r = core::peek_ksp(g, 0, 0, po);
  // s == t: the trivial empty path is the unique simple path.
  ASSERT_EQ(r.ksp.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ksp.paths[0].dist, 0.0);
}

TEST(EdgeCases, SourceEqualsTargetEveryAlgorithm) {
  auto g = test::random_graph(30, 120, 1011);
  ksp::KspOptions ko;
  ko.k = 2;
  for (auto run : {+[](const graph::CsrGraph& gg, ksp::KspOptions o) {
                     return ksp::optyen_ksp(gg, 5, 5, o);
                   },
                   +[](const graph::CsrGraph& gg, ksp::KspOptions o) {
                     return ksp::sb_ksp(gg, 5, 5, o);
                   },
                   +[](const graph::CsrGraph& gg, ksp::KspOptions o) {
                     return ksp::pnc_ksp(gg, 5, 5, o);
                   }}) {
    auto r = run(g, ko);
    ASSERT_GE(r.paths.size(), 1u);
    EXPECT_DOUBLE_EQ(r.paths[0].dist, 0.0);
    EXPECT_EQ(r.paths[0].verts, (std::vector<vid_t>{5}));
  }
}

TEST(EdgeCases, TwoVertexGraph) {
  auto g = graph::from_edges(2, {{0, 1, 2.5}});
  core::PeekOptions po;
  po.k = 5;
  auto r = core::peek_ksp(g, 0, 1, po);
  ASSERT_EQ(r.ksp.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ksp.paths[0].dist, 2.5);
  EXPECT_DOUBLE_EQ(r.upper_bound, kInfDist);  // fewer than K estimates
}

TEST(EdgeCases, KEqualsPathCountExactly) {
  // Diamond: exactly 2 paths; K = 2 must not trigger extra work or misses.
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  core::PeekOptions po;
  po.k = 2;
  auto r = core::peek_ksp(g, 0, 3, po);
  ASSERT_EQ(r.ksp.paths.size(), 2u);
  EXPECT_DOUBLE_EQ(r.upper_bound, 3.0);  // both estimates exist
}

TEST(EdgeCases, SelfLoopsNeverAppear) {
  // Builder drops self-loops, but a hand-built CSR may carry them; no
  // algorithm may put one on a simple path.
  graph::CsrGraph g({0, 2, 3, 3}, {0, 1, 2}, {0.1, 1.0, 1.0});
  ksp::KspOptions ko;
  ko.k = 4;
  auto r = ksp::optyen_ksp(g, 0, 2, ko);
  for (const auto& p : r.paths) EXPECT_TRUE(sssp::is_simple(p));
}

TEST(EdgeCases, ParallelKZero) {
  auto g = test::random_graph(20, 60, 1013);
  core::PeekOptions po;
  po.k = 0;
  po.parallel = true;
  EXPECT_TRUE(core::peek_ksp(g, 0, 10, po).ksp.paths.empty());
}

TEST(EdgeCases, HugeKTerminates) {
  auto g = graph::from_edges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0},
                                 {2, 3, 1.0}});
  core::PeekOptions po;
  po.k = 1 << 20;
  auto r = core::peek_ksp(g, 0, 3, po);
  EXPECT_EQ(r.ksp.paths.size(), 2u);
}

TEST(EdgeCases, DistPeekSingleRankTrivialGraph) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  dist::run_ranks(1, [&](dist::Comm& c) {
    auto r = dist_peek_ksp(c, g, 0, 1, {});
    ASSERT_EQ(r.ksp.paths.size(), 1u);
    EXPECT_DOUBLE_EQ(r.ksp.paths[0].dist, 1.0);
  });
}

TEST(EdgeCases, DistPeekMoreRanksThanVertices) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  dist::run_ranks(6, [&](dist::Comm& c) {
    dist::DistPeekOptions opts;
    opts.k = 2;
    auto r = dist_peek_ksp(c, g, 0, 2, opts);
    ASSERT_EQ(r.ksp.paths.size(), 1u);
    EXPECT_DOUBLE_EQ(r.ksp.paths[0].dist, 2.0);
  });
}

TEST(EdgeCases, GroupsOnSingletonPathSpace) {
  auto g = graph::from_edges(2, {{0, 1, 1.0}});
  auto r = core::shortest_k_groups(g, 0, 1, 5);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.complete);
}

TEST(EdgeCases, HopLimitedWithBudgetOne) {
  auto g = graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 9.0}});
  auto r = ksp::hop_limited_ksp(g, 0, 2, 3, 1);
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.paths[0].dist, 9.0);
}

TEST(EdgeCases, DisconnectedSelfContainedComponents) {
  // Query inside one component must be oblivious to the other.
  graph::Builder b(8);
  for (vid_t v = 0; v < 3; ++v) b.add_edge(v, v + 1, 1.0);
  for (vid_t v = 4; v < 7; ++v) b.add_edge(v, v + 1, 1.0);
  auto g = b.build();
  core::PeekOptions po;
  po.k = 2;
  auto r = core::peek_ksp(g, 4, 7, po);
  ASSERT_EQ(r.ksp.paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ksp.paths[0].dist, 3.0);
  // The other component is entirely pruned.
  EXPECT_LE(r.kept_vertices, 4);
}

}  // namespace
}  // namespace peek
