// Sharded-serving tests (DESIGN.md §12): router determinism and consistent-
// hash stability, fleet bit-identity vs single-engine core::peek_ksp,
// hedge-cancellation correctness under a multi-threaded race storm, and
// shard-crash behaviour — degraded or kOverloaded, never a wrong answer.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "core/peek.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "shard/fleet.hpp"
#include "shard/router.hpp"
#include "test_util.hpp"

namespace peek::shard {
namespace {

using namespace std::chrono_literals;

std::vector<sssp::Path> fresh_peek(const graph::CsrGraph& g, vid_t s, vid_t t,
                                   int k) {
  core::PeekOptions po;
  po.k = k;
  return core::peek_ksp(g, s, t, po).ksp.paths;
}

void expect_identical(const std::vector<sssp::Path>& got,
                      const std::vector<sssp::Path>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].verts, want[i].verts) << "path " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "path " << i;
  }
}

/// `got` must be an exact prefix of `want` (degraded answers may be short).
void expect_prefix(const std::vector<sssp::Path>& got,
                   const std::vector<sssp::Path>& want) {
  ASSERT_LE(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].verts, want[i].verts) << "path " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "path " << i;
  }
}

graph::CsrGraph test_graph(vid_t n = 400) {
  return graph::small_world(n, 6, 0.1, {}, /*seed=*/12);
}

/// Deterministic query pool spread over the vertex space.
std::vector<std::pair<vid_t, vid_t>> pair_pool(vid_t n, int count) {
  std::vector<std::pair<vid_t, vid_t>> pool;
  for (int i = 0; pool.size() < static_cast<size_t>(count); ++i) {
    const vid_t s = static_cast<vid_t>((i * 37 + 11) % n);
    const vid_t t = static_cast<vid_t>((i * 101 + 73) % n);
    if (s != t) pool.emplace_back(s, t);
  }
  return pool;
}

std::int64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

/// Blocks until every replica finished its queued work (losing hedge
/// attempts may still be draining when query() returns).
void wait_drained(ShardFleet& fleet) {
  auto drained = [&] {
    for (int sh = 0; sh < fleet.shards(); ++sh) {
      for (int r = 0; r < fleet.replicas(); ++r) {
        auto& e = fleet.engine(sh, r);
        if (e.inflight_entries() != 0 || e.admitted_now() != 0) return false;
      }
    }
    return true;
  };
  for (int i = 0; i < 500 && !drained(); ++i)
    std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(drained());
}

// -------------------------------------------------------------------- router

TEST(ShardRouter, RouterDeterminism) {
  const vid_t n = 100000;
  RouterOptions ro;
  ro.shards = 4;
  const ShardRouter a(n, ro);
  const ShardRouter b(n, ro);  // a second "process" with the same config
  std::set<int> used;
  for (const auto& [s, t] : pair_pool(n, 2000)) {
    const int sh = a.route(s, t);
    ASSERT_GE(sh, 0);
    ASSERT_LT(sh, 4);
    EXPECT_EQ(sh, b.route(s, t));  // same placement in every run
    EXPECT_EQ(sh, a.route(s, t));  // and stable within a run
    used.insert(sh);
  }
  EXPECT_EQ(used.size(), 4u);  // vnode ring exercises every shard
}

TEST(ShardRouter, BlockLevelCoRouting) {
  const vid_t n = 100000;
  RouterOptions ro;
  ro.shards = 4;
  const ShardRouter r(n, ro);
  // Same (source block, target block) => same key => same shard.
  for (const auto& [s, t] : pair_pool(n, 500)) {
    vid_t s2 = s + 1, t2 = t + 1;
    if (s2 >= n || t2 >= n) continue;
    if (r.locality_key(s, t) == r.locality_key(s2, t2)) {
      EXPECT_EQ(r.route(s, t), r.route(s2, t2));
    }
  }
}

TEST(ShardRouter, ConsistentHashingLimitsReshuffle) {
  const vid_t n = 100000;
  RouterOptions four;
  four.shards = 4;
  RouterOptions five = four;
  five.shards = 5;
  const ShardRouter r4(n, four);
  const ShardRouter r5(n, five);
  const auto pool = pair_pool(n, 4000);
  size_t moved = 0;
  for (const auto& [s, t] : pool) {
    if (r4.route(s, t) != r5.route(s, t)) ++moved;
  }
  // Adding one shard to four should remap roughly 1/5 of the keys; a modulo
  // placement would remap ~4/5. Allow generous slack over the expectation.
  EXPECT_LT(moved, pool.size() / 2)
      << "consistent hashing reshuffled " << moved << "/" << pool.size();
  EXPECT_GT(moved, 0u);  // the new shard does take ownership of something
}

TEST(ShardRouter, SuccessorWalksAllShardsOnce) {
  const ShardRouter r(1000, {.shards = 5});
  for (int sh = 0; sh < 5; ++sh) {
    EXPECT_EQ(r.successor(sh, 0), sh);
    std::set<int> seen;
    for (int step = 0; step < 5; ++step) seen.insert(r.successor(sh, step));
    EXPECT_EQ(seen.size(), 5u);  // a full permutation, no repeats
  }
}

// -------------------------------------------------------- cached-only serving

TEST(QueryCachedOnly, ColdMissThenWarmPrefix) {
  const auto g = test_graph();
  serve::QueryEngine engine(g);
  const vid_t s = 3, t = 250;
  const int k = 6;
  // Cold: nothing cached, degraded-only lookup must refuse, not compute.
  auto cold = engine.query_cached_only(s, t, k);
  EXPECT_EQ(cold.status.code, fault::Status::kOverloaded);
  EXPECT_TRUE(cold.paths.empty());
  // Warm the cache through a normal query, then the degraded answer is an
  // exact prefix of the truth.
  auto full = engine.query(s, t, k);
  ASSERT_EQ(full.status.code, fault::Status::kOk);
  auto warm = engine.query_cached_only(s, t, k);
  EXPECT_EQ(warm.status.code, fault::Status::kOk);
  EXPECT_TRUE(warm.degraded);
  expect_prefix(warm.paths, fresh_peek(g, s, t, k));
}

// --------------------------------------------------------------------- fleet

TEST(ShardFleet, FleetBitIdentity) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  ShardFleet fleet(g, fo);
  const int k = 6;
  for (const auto& [s, t] : pair_pool(g.num_vertices(), 24)) {
    const auto want = fresh_peek(g, s, t, k);
    // Twice: cold (computes, fills the shard's cache) and warm (cache hit).
    for (int round = 0; round < 2; ++round) {
      auto r = fleet.query(s, t, k);
      ASSERT_EQ(r.result.status.code, fault::Status::kOk)
          << r.result.status.message;
      EXPECT_FALSE(r.result.degraded);
      EXPECT_EQ(r.shard, fleet.router().route(s, t));
      expect_identical(r.result.paths, want);
    }
  }
  wait_drained(fleet);
}

TEST(ShardFleet, InvalidArgumentsRejected) {
  const auto g = test_graph(100);
  ShardFleet fleet(g, {});
  EXPECT_EQ(fleet.query(0, 5, 0).result.status.code,
            fault::Status::kInvalidArgument);
  EXPECT_EQ(fleet.query(-1, 5, 3).result.status.code,
            fault::Status::kInvalidArgument);
  EXPECT_EQ(fleet.query(0, 100, 3).result.status.code,
            fault::Status::kInvalidArgument);
}

// The ISSUE acceptance storm: hedged duplicates racing under injected
// replica stalls, every completed answer bit-identical, losers cancelled,
// nothing leaked.
TEST(ShardFleet, HedgeStormBitIdentity) {
  const auto g = test_graph();
  const int k = 6;
  const auto pool = pair_pool(g.num_vertices(), 12);
  std::vector<std::vector<sssp::Path>> want;
  want.reserve(pool.size());
  for (const auto& [s, t] : pool) want.push_back(fresh_peek(g, s, t, k));

  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  fo.hedge = 1ms;
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = 42;
  inj.rate_permille = 200;
  inj.stall = 5ms;
  inj.site_filter = "shard.replica.stall";
  fo.injector = inj;

  const auto fired_before = counter_value("shard.hedges.fired");
  {
    ShardFleet fleet(g, fo);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 12;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int ti = 0; ti < kThreads; ++ti) {
      threads.emplace_back([&, ti] {
        for (int q = 0; q < kPerThread; ++q) {
          const size_t i =
              static_cast<size_t>(ti * 7 + q * 3) % pool.size();
          auto r = fleet.query(pool[i].first, pool[i].second, k);
          // Under pure stall injection every query must still succeed —
          // stalls slow replicas down, they never break them.
          if (r.result.status.code != fault::Status::kOk ||
              r.result.degraded) {
            ++failures;
            continue;
          }
          if (r.result.paths.size() != want[i].size()) {
            ++failures;
            continue;
          }
          for (size_t p = 0; p < want[i].size(); ++p) {
            if (r.result.paths[p].verts != want[i][p].verts ||
                r.result.paths[p].dist != want[i][p].dist)
              ++failures;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
    wait_drained(fleet);
    fleet.publish_latency_metrics();
  }
  // The stalls must actually have provoked hedging for this to test races.
  // (Counter readable only when the obs layer is compiled in; the race and
  // bit-identity coverage above holds either way.)
  if (obs::kEnabled) {
    EXPECT_GT(counter_value("shard.hedges.fired"), fired_before);
  }
  fault::Injector::global().disable();
}

TEST(ShardFleet, SingleShardCrashFailsOverBitIdentical) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  fo.failover = true;
  ShardFleet fleet(g, fo);
  const auto pool = pair_pool(g.num_vertices(), 40);
  const int k = 5;
  // Crash every replica of the first pool pair's home shard.
  const int dead = fleet.router().route(pool[0].first, pool[0].second);
  for (int r = 0; r < fleet.replicas(); ++r)
    fleet.set_replica_down(dead, r, true);
  for (const auto& [s, t] : pool) {
    auto r = fleet.query(s, t, k);
    ASSERT_EQ(r.result.status.code, fault::Status::kOk)
        << r.result.status.message;
    EXPECT_FALSE(r.result.degraded);
    expect_identical(r.result.paths, fresh_peek(g, s, t, k));
    if (fleet.router().route(s, t) == dead) {
      EXPECT_TRUE(r.failover);
      EXPECT_NE(r.shard, dead);  // served by a ring successor
    }
  }
  wait_drained(fleet);
}

TEST(ShardFleet, SingleShardCrashDegradedNeverWrong) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 1;
  fo.failover = false;  // strict placement: down shard cannot be rerouted
  fo.degraded_fallback = true;
  ShardFleet fleet(g, fo);
  const int k = 5;
  // A pair homed on the shard we are about to crash.
  const auto pool = pair_pool(g.num_vertices(), 8);
  const vid_t s = pool[0].first, t = pool[0].second;
  const int home = fleet.router().route(s, t);
  fleet.set_replica_down(home, 0, true);

  // Cold crash: no surviving cache holds (s, t) => shed, not wrong.
  auto cold = fleet.query(s, t, k);
  EXPECT_EQ(cold.result.status.code, fault::Status::kOverloaded);
  EXPECT_TRUE(cold.result.paths.empty());

  // Warm a survivor's cache directly (as if it had served this pair before
  // the crash), and the same query now degrades to an exact prefix.
  const int survivor = fleet.router().successor(home, 1);
  ASSERT_NE(survivor, home);
  auto warmed = fleet.engine(survivor, 0).query(s, t, k);
  ASSERT_EQ(warmed.status.code, fault::Status::kOk);
  auto deg = fleet.query(s, t, k);
  ASSERT_EQ(deg.result.status.code, fault::Status::kOk)
      << deg.result.status.message;
  EXPECT_TRUE(deg.result.degraded);
  EXPECT_EQ(deg.shard, survivor);
  expect_prefix(deg.result.paths, fresh_peek(g, s, t, k));

  // Recovery: mark the replica up again and full service resumes.
  fleet.set_replica_down(home, 0, false);
  auto back = fleet.query(s, t, k);
  ASSERT_EQ(back.result.status.code, fault::Status::kOk);
  EXPECT_FALSE(back.result.degraded);
  expect_identical(back.result.paths, fresh_peek(g, s, t, k));
  wait_drained(fleet);
}

TEST(ShardFleet, QueueAdmissionShedsButNeverLies) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 2;
  fo.replicas = 1;
  fo.max_queue = 1;  // aggressive routing-tier admission
  fo.failover = false;
  ShardFleet fleet(g, fo);
  const auto pool = pair_pool(g.num_vertices(), 8);
  const int k = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < 8; ++ti) {
    threads.emplace_back([&, ti] {
      for (int q = 0; q < 6; ++q) {
        const auto& [s, t] = pool[static_cast<size_t>(ti + q) % pool.size()];
        auto r = fleet.query(s, t, k);
        if (r.result.status.code == fault::Status::kOk &&
            !r.result.degraded) {
          const auto want = fresh_peek(g, s, t, k);
          if (r.result.paths.size() != want.size()) ++wrong;
        } else if (r.result.status.code != fault::Status::kOk &&
                   r.result.status.code != fault::Status::kOverloaded) {
          ++wrong;  // shedding must be typed kOverloaded, nothing else
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  wait_drained(fleet);
}

// ----------------------------------------------------- health and breakers

TEST(ReplicaBreaker, TripCooldownProbeCloseCycle) {
  HealthOptions ho;
  ho.min_samples = 4;
  ho.trip_threshold = 0.5;
  ho.cooldown = 30ms;
  ho.probe_budget = 1;
  ReplicaBreaker b(ho);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kAdmit);

  // Feed errors until the EWMA trips: closed -> open.
  HealthSignal bad;
  bad.error = true;
  for (int i = 0; i < 8; ++i) b.record(bad);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_LT(b.health(), ho.trip_threshold);
  // During the cooldown every admission is rejected.
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kReject);

  // After the cooldown the next admission half-opens and is the probe;
  // the budget (1) rejects a second concurrent probe.
  std::this_thread::sleep_for(ho.cooldown + 10ms);
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kProbe);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kReject);

  // A failed probe re-opens; a successful one closes with health reset.
  b.probe_done(ReplicaBreaker::ProbeOutcome::kFailure);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(ho.cooldown + 10ms);
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kProbe);
  b.probe_done(ReplicaBreaker::ProbeOutcome::kSuccess);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.health(), 1.0);
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kAdmit);
}

TEST(ReplicaBreaker, ForcedOpenBlocksAutoRecovery) {
  HealthOptions ho;
  ho.cooldown = 1ms;
  ReplicaBreaker b(ho);
  b.force_open();
  EXPECT_TRUE(b.forced_open());
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(5ms);
  // Cooldown elapsed, but a forced-open breaker never half-opens by itself.
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kReject);
  b.force_close();
  EXPECT_FALSE(b.forced_open());
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kAdmit);
}

TEST(ReplicaBreaker, AbandonedProbeReturnsSlotWithoutTransition) {
  HealthOptions ho;
  ho.min_samples = 2;
  ho.cooldown = 1ms;
  ho.probe_budget = 1;
  ReplicaBreaker b(ho);
  HealthSignal bad;
  bad.error = true;
  for (int i = 0; i < 8; ++i) b.record(bad);
  std::this_thread::sleep_for(5ms);
  ASSERT_EQ(b.admit(), ReplicaBreaker::Admission::kProbe);
  // A probe cancelled by a lost hedge race says nothing about the replica:
  // the slot comes back, the breaker stays half-open, the next pick probes.
  b.probe_done(ReplicaBreaker::ProbeOutcome::kAbandoned);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(b.admit(), ReplicaBreaker::Admission::kProbe);
}

TEST(ShardFleet, InvalidOptionsThrow) {
  const auto g = test_graph(100);
  {
    FleetOptions fo;
    fo.replicas = 0;
    EXPECT_THROW(ShardFleet(g, fo), std::invalid_argument);
  }
  {
    FleetOptions fo;
    fo.workers_per_replica = 0;
    EXPECT_THROW(ShardFleet(g, fo), std::invalid_argument);
  }
  {
    FleetOptions fo;
    fo.hedge = -1ms;
    EXPECT_THROW(ShardFleet(g, fo), std::invalid_argument);
  }
  {
    FleetOptions fo;
    fo.default_deadline = -5ms;
    EXPECT_THROW(ShardFleet(g, fo), std::invalid_argument);
  }
  {
    FleetOptions fo;
    fo.max_queue = -1;
    EXPECT_THROW(ShardFleet(g, fo), std::invalid_argument);
  }
  {
    FleetOptions fo;
    fo.router.shards = 0;  // the router validates its own options
    EXPECT_THROW(ShardFleet(g, fo), std::invalid_argument);
  }
  EXPECT_THROW(ShardRouter(100, {.shards = 4, .vnodes = 0}),
               std::invalid_argument);
  EXPECT_THROW(ShardRouter(100, {.shards = 4, .vnodes = 64, .blocks = 0}),
               std::invalid_argument);
}

// The tentpole acceptance cycle: an injected corruption is caught by the
// answer certificate, the victim replica is quarantined, drops its caches,
// warm-restarts from its persisted snapshots, and probes its way back to
// closed — while the query that hit the corruption still returns the exact
// answer via a peer.
TEST(ShardFleet, CertFailureQuarantinesHealsAndReadmits) {
  const auto g = test_graph();
  const auto snap_root = std::filesystem::temp_directory_path() /
                         "peek_test_quarantine";
  std::filesystem::remove_all(snap_root);
  const int k = 5;
  const auto pool = pair_pool(g.num_vertices(), 6);

  FleetOptions fo;
  fo.router.shards = 1;  // all traffic on one shard: deterministic victim
  fo.replicas = 2;
  fo.serve.snapshot_dir = snap_root.string();
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = 9;
  inj.rate_permille = 1000;  // first corrupt probe fires...
  inj.max_fires = 1;         // ...and only the first
  inj.site_filter = "shard.replica.corrupt";
  fo.injector = inj;

  const auto quarantines_before = counter_value("shard.replica.quarantines");
  const auto restarts_before = counter_value("shard.replica.warm_restarts");
  const auto certfail_before = counter_value("serve.certify.failures");
  {
    ShardFleet fleet(g, fo);
    // Warm both replicas engine-direct (bypasses the fleet's corrupt probe)
    // and persist, so the healed replica has snapshots to warm-restart from.
    for (const auto& [s, t] : pool) {
      for (int r = 0; r < fleet.replicas(); ++r) fleet.engine(0, r).query(s, t, k);
    }
    for (int r = 0; r < fleet.replicas(); ++r) fleet.engine(0, r).persist();

    // This query's answer is corrupted in the worker; certification must
    // catch it, quarantine the replica, and still return the exact answer
    // from the peer.
    auto res = fleet.query(pool[0].first, pool[0].second, k);
    ASSERT_EQ(res.result.status.code, fault::Status::kOk)
        << res.result.status.message;
    EXPECT_FALSE(res.result.degraded);
    expect_identical(res.result.paths,
                     fresh_peek(g, pool[0].first, pool[0].second, k));
    if (obs::kEnabled) {
      EXPECT_EQ(counter_value("serve.certify.failures") - certfail_before, 1);
      EXPECT_EQ(counter_value("shard.replica.quarantines") -
                    quarantines_before, 1);
    }

    // Exactly one replica is out (quarantined or already healing); service
    // continues bit-identical throughout.
    fleet.drain_heals();
    if (obs::kEnabled) {
      EXPECT_GE(counter_value("shard.replica.warm_restarts") -
                    restarts_before, 1);
    }
    // The healed engine restored its persisted artifacts (true warm restart,
    // not a cold rebuild).
    int restored = 0;
    for (int r = 0; r < fleet.replicas(); ++r)
      restored += fleet.engine(0, r).restored_artifacts();
    EXPECT_GT(restored, 0);

    // Re-admission without operator intervention: keep querying until both
    // breakers are closed again (half-open probes ride regular traffic).
    bool all_closed = false;
    for (int i = 0; i < 500 && !all_closed; ++i) {
      for (const auto& [s, t] : pool) {
        auto r = fleet.query(s, t, k);
        ASSERT_EQ(r.result.status.code, fault::Status::kOk);
        if (!r.result.degraded)
          expect_identical(r.result.paths, fresh_peek(g, s, t, k));
      }
      all_closed = fleet.breaker_state(0, 0) == BreakerState::kClosed &&
                   fleet.breaker_state(0, 1) == BreakerState::kClosed;
      if (!all_closed) std::this_thread::sleep_for(5ms);
    }
    EXPECT_TRUE(all_closed);
    wait_drained(fleet);
  }
  fault::Injector::global().disable();
  std::error_code ec;
  std::filesystem::remove_all(snap_root, ec);
}

// Compound failure: hedging enabled, a replica hard-down, and a 1 ms
// deadline all in the same query. Whatever wins the race must be typed —
// kOk (bit-identical), kDeadlineExceeded (exact partial prefix), or
// kOverloaded — never a wrong answer, never a crash.
TEST(ShardFleet, CompoundHedgeDownReplicaTightDeadline) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 2;
  fo.replicas = 2;
  fo.hedge = 1ms;
  ShardFleet fleet(g, fo);
  const int k = 5;
  const auto pool = pair_pool(g.num_vertices(), 24);
  // Down one replica on every shard so half the picks bounce into retries.
  for (int sh = 0; sh < fleet.shards(); ++sh)
    fleet.set_replica_down(sh, 0, true);
  for (const auto& [s, t] : pool) {
    serve::QueryOptions qo;
    qo.deadline = 1ms;
    auto r = fleet.query(s, t, k, qo);
    const auto code = r.result.status.code;
    EXPECT_TRUE(code == fault::Status::kOk ||
                code == fault::Status::kDeadlineExceeded ||
                code == fault::Status::kOverloaded)
        << fault::to_string(code) << ": " << r.result.status.message;
    if (code == fault::Status::kOk && !r.result.degraded) {
      expect_identical(r.result.paths, fresh_peek(g, s, t, k));
    } else if (code == fault::Status::kDeadlineExceeded) {
      expect_prefix(r.result.paths, fresh_peek(g, s, t, k));
    }
  }
  wait_drained(fleet);
}

TEST(ShardFleet, LatencyStatsCoverServedShards) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  ShardFleet fleet(g, fo);
  for (const auto& [s, t] : pair_pool(g.num_vertices(), 32))
    fleet.query(s, t, 4);
  const auto st = fleet.stats();
  ASSERT_EQ(st.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& sl : st) {
    total += sl.count;
    if (sl.count > 0) {
      EXPECT_GE(sl.p99_s, sl.p50_s);
      EXPECT_GT(sl.p99_s, 0.0);
    }
  }
  EXPECT_EQ(total, 32u);
  fleet.publish_latency_metrics();
  if (obs::kEnabled) {
    EXPECT_GT(obs::MetricsRegistry::global()
                  .gauge("shard.p99_seconds")
                  .value(),
              0.0);
  }
}

}  // namespace
}  // namespace peek::shard
