// Sharded-serving tests (DESIGN.md §12): router determinism and consistent-
// hash stability, fleet bit-identity vs single-engine core::peek_ksp,
// hedge-cancellation correctness under a multi-threaded race storm, and
// shard-crash behaviour — degraded or kOverloaded, never a wrong answer.
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "core/peek.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "shard/fleet.hpp"
#include "shard/router.hpp"
#include "test_util.hpp"

namespace peek::shard {
namespace {

using namespace std::chrono_literals;

std::vector<sssp::Path> fresh_peek(const graph::CsrGraph& g, vid_t s, vid_t t,
                                   int k) {
  core::PeekOptions po;
  po.k = k;
  return core::peek_ksp(g, s, t, po).ksp.paths;
}

void expect_identical(const std::vector<sssp::Path>& got,
                      const std::vector<sssp::Path>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].verts, want[i].verts) << "path " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "path " << i;
  }
}

/// `got` must be an exact prefix of `want` (degraded answers may be short).
void expect_prefix(const std::vector<sssp::Path>& got,
                   const std::vector<sssp::Path>& want) {
  ASSERT_LE(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].verts, want[i].verts) << "path " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "path " << i;
  }
}

graph::CsrGraph test_graph(vid_t n = 400) {
  return graph::small_world(n, 6, 0.1, {}, /*seed=*/12);
}

/// Deterministic query pool spread over the vertex space.
std::vector<std::pair<vid_t, vid_t>> pair_pool(vid_t n, int count) {
  std::vector<std::pair<vid_t, vid_t>> pool;
  for (int i = 0; pool.size() < static_cast<size_t>(count); ++i) {
    const vid_t s = static_cast<vid_t>((i * 37 + 11) % n);
    const vid_t t = static_cast<vid_t>((i * 101 + 73) % n);
    if (s != t) pool.emplace_back(s, t);
  }
  return pool;
}

std::int64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

/// Blocks until every replica finished its queued work (losing hedge
/// attempts may still be draining when query() returns).
void wait_drained(ShardFleet& fleet) {
  auto drained = [&] {
    for (int sh = 0; sh < fleet.shards(); ++sh) {
      for (int r = 0; r < fleet.replicas(); ++r) {
        auto& e = fleet.engine(sh, r);
        if (e.inflight_entries() != 0 || e.admitted_now() != 0) return false;
      }
    }
    return true;
  };
  for (int i = 0; i < 500 && !drained(); ++i)
    std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(drained());
}

// -------------------------------------------------------------------- router

TEST(ShardRouter, RouterDeterminism) {
  const vid_t n = 100000;
  RouterOptions ro;
  ro.shards = 4;
  const ShardRouter a(n, ro);
  const ShardRouter b(n, ro);  // a second "process" with the same config
  std::set<int> used;
  for (const auto& [s, t] : pair_pool(n, 2000)) {
    const int sh = a.route(s, t);
    ASSERT_GE(sh, 0);
    ASSERT_LT(sh, 4);
    EXPECT_EQ(sh, b.route(s, t));  // same placement in every run
    EXPECT_EQ(sh, a.route(s, t));  // and stable within a run
    used.insert(sh);
  }
  EXPECT_EQ(used.size(), 4u);  // vnode ring exercises every shard
}

TEST(ShardRouter, BlockLevelCoRouting) {
  const vid_t n = 100000;
  RouterOptions ro;
  ro.shards = 4;
  const ShardRouter r(n, ro);
  // Same (source block, target block) => same key => same shard.
  for (const auto& [s, t] : pair_pool(n, 500)) {
    vid_t s2 = s + 1, t2 = t + 1;
    if (s2 >= n || t2 >= n) continue;
    if (r.locality_key(s, t) == r.locality_key(s2, t2)) {
      EXPECT_EQ(r.route(s, t), r.route(s2, t2));
    }
  }
}

TEST(ShardRouter, ConsistentHashingLimitsReshuffle) {
  const vid_t n = 100000;
  RouterOptions four;
  four.shards = 4;
  RouterOptions five = four;
  five.shards = 5;
  const ShardRouter r4(n, four);
  const ShardRouter r5(n, five);
  const auto pool = pair_pool(n, 4000);
  size_t moved = 0;
  for (const auto& [s, t] : pool) {
    if (r4.route(s, t) != r5.route(s, t)) ++moved;
  }
  // Adding one shard to four should remap roughly 1/5 of the keys; a modulo
  // placement would remap ~4/5. Allow generous slack over the expectation.
  EXPECT_LT(moved, pool.size() / 2)
      << "consistent hashing reshuffled " << moved << "/" << pool.size();
  EXPECT_GT(moved, 0u);  // the new shard does take ownership of something
}

TEST(ShardRouter, SuccessorWalksAllShardsOnce) {
  const ShardRouter r(1000, {.shards = 5});
  for (int sh = 0; sh < 5; ++sh) {
    EXPECT_EQ(r.successor(sh, 0), sh);
    std::set<int> seen;
    for (int step = 0; step < 5; ++step) seen.insert(r.successor(sh, step));
    EXPECT_EQ(seen.size(), 5u);  // a full permutation, no repeats
  }
}

// -------------------------------------------------------- cached-only serving

TEST(QueryCachedOnly, ColdMissThenWarmPrefix) {
  const auto g = test_graph();
  serve::QueryEngine engine(g);
  const vid_t s = 3, t = 250;
  const int k = 6;
  // Cold: nothing cached, degraded-only lookup must refuse, not compute.
  auto cold = engine.query_cached_only(s, t, k);
  EXPECT_EQ(cold.status.code, fault::Status::kOverloaded);
  EXPECT_TRUE(cold.paths.empty());
  // Warm the cache through a normal query, then the degraded answer is an
  // exact prefix of the truth.
  auto full = engine.query(s, t, k);
  ASSERT_EQ(full.status.code, fault::Status::kOk);
  auto warm = engine.query_cached_only(s, t, k);
  EXPECT_EQ(warm.status.code, fault::Status::kOk);
  EXPECT_TRUE(warm.degraded);
  expect_prefix(warm.paths, fresh_peek(g, s, t, k));
}

// --------------------------------------------------------------------- fleet

TEST(ShardFleet, FleetBitIdentity) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  ShardFleet fleet(g, fo);
  const int k = 6;
  for (const auto& [s, t] : pair_pool(g.num_vertices(), 24)) {
    const auto want = fresh_peek(g, s, t, k);
    // Twice: cold (computes, fills the shard's cache) and warm (cache hit).
    for (int round = 0; round < 2; ++round) {
      auto r = fleet.query(s, t, k);
      ASSERT_EQ(r.result.status.code, fault::Status::kOk)
          << r.result.status.message;
      EXPECT_FALSE(r.result.degraded);
      EXPECT_EQ(r.shard, fleet.router().route(s, t));
      expect_identical(r.result.paths, want);
    }
  }
  wait_drained(fleet);
}

TEST(ShardFleet, InvalidArgumentsRejected) {
  const auto g = test_graph(100);
  ShardFleet fleet(g, {});
  EXPECT_EQ(fleet.query(0, 5, 0).result.status.code,
            fault::Status::kInvalidArgument);
  EXPECT_EQ(fleet.query(-1, 5, 3).result.status.code,
            fault::Status::kInvalidArgument);
  EXPECT_EQ(fleet.query(0, 100, 3).result.status.code,
            fault::Status::kInvalidArgument);
}

// The ISSUE acceptance storm: hedged duplicates racing under injected
// replica stalls, every completed answer bit-identical, losers cancelled,
// nothing leaked.
TEST(ShardFleet, HedgeStormBitIdentity) {
  const auto g = test_graph();
  const int k = 6;
  const auto pool = pair_pool(g.num_vertices(), 12);
  std::vector<std::vector<sssp::Path>> want;
  want.reserve(pool.size());
  for (const auto& [s, t] : pool) want.push_back(fresh_peek(g, s, t, k));

  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  fo.hedge = 1ms;
  fault::InjectorConfig inj;
  inj.enabled = true;
  inj.seed = 42;
  inj.rate_permille = 200;
  inj.stall = 5ms;
  inj.site_filter = "shard.replica.stall";
  fo.injector = inj;

  const auto fired_before = counter_value("shard.hedges.fired");
  {
    ShardFleet fleet(g, fo);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 12;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int ti = 0; ti < kThreads; ++ti) {
      threads.emplace_back([&, ti] {
        for (int q = 0; q < kPerThread; ++q) {
          const size_t i =
              static_cast<size_t>(ti * 7 + q * 3) % pool.size();
          auto r = fleet.query(pool[i].first, pool[i].second, k);
          // Under pure stall injection every query must still succeed —
          // stalls slow replicas down, they never break them.
          if (r.result.status.code != fault::Status::kOk ||
              r.result.degraded) {
            ++failures;
            continue;
          }
          if (r.result.paths.size() != want[i].size()) {
            ++failures;
            continue;
          }
          for (size_t p = 0; p < want[i].size(); ++p) {
            if (r.result.paths[p].verts != want[i][p].verts ||
                r.result.paths[p].dist != want[i][p].dist)
              ++failures;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
    wait_drained(fleet);
    fleet.publish_latency_metrics();
  }
  // The stalls must actually have provoked hedging for this to test races.
  // (Counter readable only when the obs layer is compiled in; the race and
  // bit-identity coverage above holds either way.)
  if (obs::kEnabled) {
    EXPECT_GT(counter_value("shard.hedges.fired"), fired_before);
  }
  fault::Injector::global().disable();
}

TEST(ShardFleet, SingleShardCrashFailsOverBitIdentical) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 2;
  fo.failover = true;
  ShardFleet fleet(g, fo);
  const auto pool = pair_pool(g.num_vertices(), 40);
  const int k = 5;
  // Crash every replica of the first pool pair's home shard.
  const int dead = fleet.router().route(pool[0].first, pool[0].second);
  for (int r = 0; r < fleet.replicas(); ++r)
    fleet.set_replica_down(dead, r, true);
  for (const auto& [s, t] : pool) {
    auto r = fleet.query(s, t, k);
    ASSERT_EQ(r.result.status.code, fault::Status::kOk)
        << r.result.status.message;
    EXPECT_FALSE(r.result.degraded);
    expect_identical(r.result.paths, fresh_peek(g, s, t, k));
    if (fleet.router().route(s, t) == dead) {
      EXPECT_TRUE(r.failover);
      EXPECT_NE(r.shard, dead);  // served by a ring successor
    }
  }
  wait_drained(fleet);
}

TEST(ShardFleet, SingleShardCrashDegradedNeverWrong) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  fo.replicas = 1;
  fo.failover = false;  // strict placement: down shard cannot be rerouted
  fo.degraded_fallback = true;
  ShardFleet fleet(g, fo);
  const int k = 5;
  // A pair homed on the shard we are about to crash.
  const auto pool = pair_pool(g.num_vertices(), 8);
  const vid_t s = pool[0].first, t = pool[0].second;
  const int home = fleet.router().route(s, t);
  fleet.set_replica_down(home, 0, true);

  // Cold crash: no surviving cache holds (s, t) => shed, not wrong.
  auto cold = fleet.query(s, t, k);
  EXPECT_EQ(cold.result.status.code, fault::Status::kOverloaded);
  EXPECT_TRUE(cold.result.paths.empty());

  // Warm a survivor's cache directly (as if it had served this pair before
  // the crash), and the same query now degrades to an exact prefix.
  const int survivor = fleet.router().successor(home, 1);
  ASSERT_NE(survivor, home);
  auto warmed = fleet.engine(survivor, 0).query(s, t, k);
  ASSERT_EQ(warmed.status.code, fault::Status::kOk);
  auto deg = fleet.query(s, t, k);
  ASSERT_EQ(deg.result.status.code, fault::Status::kOk)
      << deg.result.status.message;
  EXPECT_TRUE(deg.result.degraded);
  EXPECT_EQ(deg.shard, survivor);
  expect_prefix(deg.result.paths, fresh_peek(g, s, t, k));

  // Recovery: mark the replica up again and full service resumes.
  fleet.set_replica_down(home, 0, false);
  auto back = fleet.query(s, t, k);
  ASSERT_EQ(back.result.status.code, fault::Status::kOk);
  EXPECT_FALSE(back.result.degraded);
  expect_identical(back.result.paths, fresh_peek(g, s, t, k));
  wait_drained(fleet);
}

TEST(ShardFleet, QueueAdmissionShedsButNeverLies) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 2;
  fo.replicas = 1;
  fo.max_queue = 1;  // aggressive routing-tier admission
  fo.failover = false;
  ShardFleet fleet(g, fo);
  const auto pool = pair_pool(g.num_vertices(), 8);
  const int k = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < 8; ++ti) {
    threads.emplace_back([&, ti] {
      for (int q = 0; q < 6; ++q) {
        const auto& [s, t] = pool[static_cast<size_t>(ti + q) % pool.size()];
        auto r = fleet.query(s, t, k);
        if (r.result.status.code == fault::Status::kOk &&
            !r.result.degraded) {
          const auto want = fresh_peek(g, s, t, k);
          if (r.result.paths.size() != want.size()) ++wrong;
        } else if (r.result.status.code != fault::Status::kOk &&
                   r.result.status.code != fault::Status::kOverloaded) {
          ++wrong;  // shedding must be typed kOverloaded, nothing else
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  wait_drained(fleet);
}

TEST(ShardFleet, LatencyStatsCoverServedShards) {
  const auto g = test_graph();
  FleetOptions fo;
  fo.router.shards = 4;
  ShardFleet fleet(g, fo);
  for (const auto& [s, t] : pair_pool(g.num_vertices(), 32))
    fleet.query(s, t, 4);
  const auto st = fleet.stats();
  ASSERT_EQ(st.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& sl : st) {
    total += sl.count;
    if (sl.count > 0) {
      EXPECT_GE(sl.p99_s, sl.p50_s);
      EXPECT_GT(sl.p99_s, 0.0);
    }
  }
  EXPECT_EQ(total, 32u);
  fleet.publish_latency_metrics();
  if (obs::kEnabled) {
    EXPECT_GT(obs::MetricsRegistry::global()
                  .gauge("shard.p99_seconds")
                  .value(),
              0.0);
  }
}

}  // namespace
}  // namespace peek::shard
